"""Memory cells: one relational instruction plus operand slots.

"A memory cell contains an instruction and room for the operand data.  As
soon as all the required data is present, the contents of the cell are
sent to some processor for execution."

For relational data-flow, "all the required data" depends on the operand
granularity (Section 3.0):

* relation level — every operand slot complete;
* page level — at least one page in every slot ("an operator can be
  initiated as soon as at least one page of each participating
  relation(s) exists");
* tuple level — same enabling as page level here, since pages are the
  containers our tuples travel in; the difference is per-tuple packet
  accounting, handled by the machine.

A cell does not execute anything itself; it *fires* :class:`FiringUnit`
packets — (page), (outer page x inner page), or (whole relations) — that
the machine routes through the arbitration network to a processor.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Set, Tuple

from repro.errors import MachineError
from repro.relational.page import Page
from repro.relational.schema import Row, Schema
from repro.query.tree import (
    AppendNode,
    DeleteNode,
    JoinNode,
    ProjectNode,
    QueryNode,
    RestrictNode,
    UnionNode,
    UpdateNode,
)


class OperandSlot:
    """Room for one operand's data: a growing list of pages."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self.pages: List[Page] = []
        self.complete = False

    def deliver(self, page: Page) -> int:
        """A result (or base) page arrives; returns its index in the slot."""
        if self.complete:
            raise MachineError(f"operand slot {self.name!r} grew after completion")
        self.pages.append(page)
        return len(self.pages) - 1

    def finish(self) -> None:
        """No more pages will arrive."""
        self.complete = True

    @property
    def page_count(self) -> int:
        """Pages delivered so far."""
        return len(self.pages)

    @property
    def row_count(self) -> int:
        """Rows delivered so far."""
        return sum(p.row_count for p in self.pages)


@dataclass(frozen=True)
class FiringUnit:
    """One enabled instruction instance travelling to a processor.

    ``pages`` holds (slot_index, page_index) pairs naming the operand
    pages this firing consumes; relation-level firings name every page.
    """

    cell: "Cell"
    pages: Tuple[Tuple[int, int], ...]
    sequence: int

    @property
    def payload_bytes(self) -> int:
        """Operand bytes this firing pushes through the arbitration network."""
        return sum(
            self.cell.operands[slot].pages[page].used_bytes for slot, page in self.pages
        )

    @property
    def payload_rows(self) -> int:
        """Operand rows carried."""
        return sum(
            self.cell.operands[slot].pages[page].row_count for slot, page in self.pages
        )


class Cell:
    """One memory cell: instruction, operand slots, firing bookkeeping."""

    _ids = itertools.count(1)

    def __init__(self, node: QueryNode, operand_schemas: List[Tuple[str, Schema]], output_schema: Schema):
        self.cell_id = next(self._ids)
        self.node = node
        self.output_schema = output_schema
        #: Owning query's name, stamped at submit time.  Gives the machine
        #: O(1) cell -> query resolution (span attribution, result routing)
        #: instead of scanning every submitted program.
        self.tree_name = ""
        self.operands = [OperandSlot(name, schema) for name, schema in operand_schemas]
        #: Cells whose slot receives this cell's output: (cell, slot index).
        self.destinations: List[Tuple["Cell", int]] = []
        # Incremental firing cursors: pages below these indices have fired.
        self._emitted_per_slot = [0 for _ in self.operands]
        self._emitted_outer = 0
        self._emitted_inner = 0
        self._relation_fired = False
        self._fire_seq = itertools.count()
        self.firings_outstanding = 0
        self.done = False
        self._kernel = _make_kernel(node, [s for _, s in operand_schemas], output_schema)

    # -- enabling -----------------------------------------------------------------

    def enabled(self, granularity: str) -> bool:
        """The Section 3.0 enabling rules."""
        if granularity == "relation":
            return all(slot.complete for slot in self.operands)
        if granularity in ("page", "tuple"):
            return all(slot.page_count > 0 or slot.complete for slot in self.operands)
        raise MachineError(f"unknown granularity {granularity!r}")

    def ready_firings(self, granularity: str) -> List[FiringUnit]:
        """Take every enabled firing that has not fired yet (consuming).

        Generation is incremental — cursors remember what already fired —
        so the cost is proportional to *new* firings, not to the cell's
        whole firing history (essential for large joins).
        """
        if self.done or not self.enabled(granularity):
            return []
        out: List[FiringUnit] = []
        if granularity == "relation":
            if not self._relation_fired:
                self._relation_fired = True
                everything = tuple(
                    (slot_idx, page_idx)
                    for slot_idx, slot in enumerate(self.operands)
                    for page_idx in range(slot.page_count)
                )
                out.append(FiringUnit(self, everything, next(self._fire_seq)))
            return out
        if isinstance(self.node, JoinNode):
            outer_count = self.operands[0].page_count
            inner_count = self.operands[1].page_count
            # New outer pages meet every inner page...
            for o in range(self._emitted_outer, outer_count):
                for i in range(inner_count):
                    out.append(FiringUnit(self, ((0, o), (1, i)), next(self._fire_seq)))
            # ...and old outer pages meet only the new inner pages.
            for o in range(self._emitted_outer):
                for i in range(self._emitted_inner, inner_count):
                    out.append(FiringUnit(self, ((0, o), (1, i)), next(self._fire_seq)))
            self._emitted_outer = outer_count
            self._emitted_inner = inner_count
            return out
        for slot_idx, slot in enumerate(self.operands):
            for page_idx in range(self._emitted_per_slot[slot_idx], slot.page_count):
                out.append(FiringUnit(self, ((slot_idx, page_idx),), next(self._fire_seq)))
            self._emitted_per_slot[slot_idx] = slot.page_count
        return out

    def has_unfired(self, granularity: str) -> bool:
        """Non-consuming peek: would :meth:`ready_firings` yield anything?"""
        if self.done or not self.enabled(granularity):
            return False
        if granularity == "relation":
            return not self._relation_fired
        if isinstance(self.node, JoinNode):
            return (
                self._emitted_outer < self.operands[0].page_count
                or self._emitted_inner < self.operands[1].page_count
            )
        return any(
            emitted < slot.page_count
            for emitted, slot in zip(self._emitted_per_slot, self.operands)
        )

    def all_work_fired_and_done(self, granularity: str) -> bool:
        """Every possible firing has fired and returned."""
        if not all(slot.complete for slot in self.operands):
            return False
        if self.firings_outstanding:
            return False
        return not self.has_unfired(granularity)

    # -- execution ------------------------------------------------------------------

    def execute(self, unit: FiringUnit) -> List[Row]:
        """The processor-side computation for one firing (row-exact)."""
        return self._kernel(unit)

    def cpu_cost_rows(self, unit: FiringUnit) -> int:
        """Row-operations this firing costs (the time model's input).

        Restrict/project/union: one operation per input row.  Join: one
        comparison per (outer row x inner row) pair.
        """
        if isinstance(self.node, JoinNode):
            outer_rows = sum(
                self.operands[0].pages[p].row_count for s, p in unit.pages if s == 0
            )
            inner_rows = sum(
                self.operands[1].pages[p].row_count for s, p in unit.pages if s == 1
            )
            return outer_rows * inner_rows
        return unit.payload_rows

    def __repr__(self) -> str:
        return f"Cell{self.cell_id}({self.node.opcode}{self.node.node_id})"


def _make_kernel(
    node: QueryNode, operand_schemas: List[Schema], output_schema: Schema
) -> Callable[[FiringUnit], List[Row]]:
    """Compile the node into a firing-unit kernel."""
    if isinstance(node, RestrictNode):
        test = node.predicate.compile(operand_schemas[0])

        def restrict_kernel(unit: FiringUnit) -> List[Row]:
            out: List[Row] = []
            for slot, page in unit.pages:
                out.extend(r for r in unit.cell.operands[slot].pages[page].rows() if test(r))
            return out

        return restrict_kernel

    if isinstance(node, ProjectNode):
        indices = [operand_schemas[0].index_of(a) for a in node.attributes]
        seen: Set[Row] = set()
        dedup = node.eliminate_duplicates

        def project_kernel(unit: FiringUnit) -> List[Row]:
            out: List[Row] = []
            for slot, page in unit.pages:
                for row in unit.cell.operands[slot].pages[page].rows():
                    cut = tuple(row[i] for i in indices)
                    if dedup:
                        if cut in seen:
                            continue
                        seen.add(cut)
                    out.append(cut)
            return out

        return project_kernel

    if isinstance(node, UnionNode):
        seen_union: Set[Row] = set()

        def union_kernel(unit: FiringUnit) -> List[Row]:
            out: List[Row] = []
            for slot, page in unit.pages:
                for row in unit.cell.operands[slot].pages[page].rows():
                    if row not in seen_union:
                        seen_union.add(row)
                        out.append(row)
            return out

        return union_kernel

    if isinstance(node, AppendNode):

        def append_kernel(unit: FiringUnit) -> List[Row]:
            out: List[Row] = []
            for slot, page in unit.pages:
                out.extend(unit.cell.operands[slot].pages[page].rows())
            return out

        return append_kernel

    if isinstance(node, DeleteNode):
        survive = node.predicate.compile(operand_schemas[0])

        def delete_kernel(unit: FiringUnit) -> List[Row]:
            out: List[Row] = []
            for slot, page in unit.pages:
                out.extend(
                    r
                    for r in unit.cell.operands[slot].pages[page].rows()
                    if not survive(r)
                )
            return out

        return delete_kernel

    if isinstance(node, UpdateNode):
        apply_row = node.compile_apply(operand_schemas[0])

        def update_kernel(unit: FiringUnit) -> List[Row]:
            out: List[Row] = []
            for slot, page in unit.pages:
                out.extend(
                    apply_row(r) for r in unit.cell.operands[slot].pages[page].rows()
                )
            return out

        return update_kernel

    if isinstance(node, JoinNode):
        from repro.direct.exec_model import join_pages

        outer_index = operand_schemas[0].index_of(node.condition.outer_attr)
        inner_index = operand_schemas[1].index_of(node.condition.inner_attr)

        def join_kernel(unit: FiringUnit) -> List[Row]:
            outer_pages = [p for s, p in unit.pages if s == 0]
            inner_pages = [p for s, p in unit.pages if s == 1]
            out: List[Row] = []
            for o in outer_pages:
                for i in inner_pages:
                    out.extend(
                        join_pages(
                            unit.cell.operands[0].pages[o],
                            unit.cell.operands[1].pages[i],
                            node.condition,
                            outer_index,
                            inner_index,
                        )
                    )
            return out

        return join_kernel

    raise MachineError(f"the data-flow machine cannot execute {node.opcode!r} nodes")
