"""The MIT-model data-flow machine (Section 2.2, Figure 2.2).

"A data-flow machine is an architecture devoid of a program counter where
instructions are enabled for execution as soon as their operands are
present.  Such a machine consists of a memory section, a processing
section, and an interconnection device between the two sections."

This package models the paper's reference architecture [6] directly:

* **memory cells** (:mod:`repro.dataflow.cell`) hold one relational
  instruction each, with operand slots filled by page tables;
* the **arbitration network** carries enabled operation packets from
  cells to processors; the **distribution network** carries result
  packets back to destination cells (:mod:`repro.dataflow.machine`);
* the **operand granularity** decides what a single firing is: the whole
  relation (one firing per instruction — the concurrency ceiling the
  paper criticizes), a page (one firing per page or page pair), or a
  tuple (page-pair firings that pay per-tuple packet accounting).

Unlike :mod:`repro.direct`, this machine is memory-resident ("we assume
that at the time that a memory cell fires, the associated data pages are
retrieved from a cache"): it isolates the *network and concurrency*
consequences of granularity from the storage-hierarchy consequences the
DIRECT simulator measures.  Both machines validate against the reference
interpreter.
"""

from repro.dataflow.cell import Cell, FiringUnit, OperandSlot
from repro.dataflow.machine import DataflowMachine, DataflowReport
from repro.dataflow.program import compile_query

__all__ = [
    "Cell",
    "OperandSlot",
    "FiringUnit",
    "DataflowMachine",
    "DataflowReport",
    "compile_query",
]
