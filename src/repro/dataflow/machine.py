"""The Dennis-style machine loop: cells -> arbitration -> processors ->
distribution -> cells (Figure 2.2).

Timing model (all constants from :class:`repro.direct.exec_model.ExecModel`
and :mod:`repro.hw`):

* the **arbitration network** is ``network_width`` parallel paths, each
  carrying one operation packet at ``network_rate`` bytes/ms; a packet's
  size is its operand pages plus the overhead constant ``c`` — or, at
  tuple granularity, the per-tuple formula of Section 3.3
  (rows * (record + c) for unary firings, pairs * (w_o + w_i + c) for
  join firings);
* **processors** charge the per-row/per-pair CPU constants;
* the **distribution network** mirrors the arbitration network, carrying
  result pages to destination cells.

The machine is workload-agnostic: submit any query trees, run, and check
the produced relations against the reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro import hw
from repro.errors import CrashError, FaultError, MachineError
from repro.direct.exec_model import ExecModel
from repro.recovery.apply import apply_write
from repro.recovery.txn import Transaction, TransactionManager
from repro.relational.catalog import Catalog
from repro.relational.page import Page, page_capacity
from repro.relational.relation import Relation
from repro.relational.schema import Row
from repro.query.tree import AppendNode, DeleteNode, JoinNode, QueryTree, UpdateNode
from repro.dataflow.cell import Cell, FiringUnit
from repro.dataflow.program import DataflowProgram, compile_query
from repro.sim.engine import Simulator
from repro.sim.resources import Resource


@dataclass
class DataflowReport:
    """Outcome of one data-flow machine run."""

    granularity: str
    processors: int
    elapsed_ms: float
    firings: int
    arbitration_bytes: int
    distribution_bytes: int
    results: Dict[str, Relation]
    query_times: Dict[str, float]
    events_processed: int

    def arbitration_mbps(self) -> float:
        """Average arbitration-network load (the Section 3.3 quantity)."""
        if self.elapsed_ms <= 0:
            return 0.0
        return self.arbitration_bytes * 8.0 / 1e6 / (self.elapsed_ms / 1000.0)


class DataflowMachine:
    """The MIT-model machine executing relational query trees."""

    def __init__(
        self,
        catalog: Catalog,
        processors: int = 4,
        granularity: str = "page",
        page_bytes: int = 2048,
        model: Optional[ExecModel] = None,
        network_width: int = 4,
        network_rate: float = 2048.0,  # bytes per ms per path (~2 MB/s)
        max_events: int = 2_000_000,
    ):
        if granularity not in ("relation", "page", "tuple"):
            raise MachineError(f"unknown granularity {granularity!r}")
        if processors < 1:
            raise MachineError("need at least one processor")
        self.catalog = catalog
        self.granularity = granularity
        self.page_bytes = page_bytes
        self.model = model or ExecModel(page_bytes=page_bytes)
        self.network_rate = network_rate
        self.max_events = max_events

        self.sim = Simulator()
        self.arbitration = Resource(self.sim, "arbitration", capacity=network_width)
        self.distribution = Resource(self.sim, "distribution", capacity=network_width)
        self.processors = Resource(self.sim, "processors", capacity=processors)
        self._processor_count = processors

        self._programs: List[DataflowProgram] = []
        self._assemblies: Dict[int, List[Row]] = {}
        self._results: Dict[str, List[Row]] = {}
        self._query_done_at: Dict[str, float] = {}
        self.firings = 0
        self.arbitration_bytes = 0
        self.distribution_bytes = 0
        #: Durable write transactions (see :meth:`attach_recovery`);
        #: None means writes install in-memory only.
        self.txn: Optional[TransactionManager] = None
        self._write_txns: Dict[str, Transaction] = {}
        #: Serving hook: ``(query_name, completed_at_ms, result_rows)``
        #: on root-cell completion.
        self.on_query_complete: Optional[Callable[[str, float, int], None]] = None
        #: True while :meth:`run_service` drives the loop — mid-run
        #: submissions then pump immediately.  Batch runs leave this off
        #: so their event sequence (and byte-identity) is unchanged.
        self._serving = False

    # ------------------------------------------------------------------ host API

    def attach_recovery(self, tm: TransactionManager) -> None:
        """Arm durable write transactions through ``tm``.

        Seeds the stable store from the catalog's current images if the
        caller has not already, and registers the WAL invariants with
        this run's sanitizer.  Like DIRECT, the data-flow machine has no
        admission lock manager: conflicting writes must be serialized by
        the caller (chained submission).
        """
        if not tm.store.pages:
            tm.seed_from_catalog(self.catalog)
        self.txn = tm
        tm.register_sanitizer(self.sim)

    def submit(self, tree: QueryTree) -> DataflowProgram:
        """Compile ``tree`` into cells and add it to the memory section."""
        root = tree.root
        if (
            self.txn is not None
            and isinstance(root, (AppendNode, DeleteNode, UpdateNode))
            and tree.name not in self._write_txns
        ):
            tree.validate(self.catalog)
            self._write_txns[tree.name] = self.txn.begin(
                tree.name,
                root.target_relation,
                root.output_schema(self.catalog),
                append=isinstance(root, AppendNode),
            )
        program = compile_query(tree, self.catalog, self.page_bytes)
        self._programs.append(program)
        for cell in program.cells:
            self._assemblies[cell.cell_id] = []
            cell.tree_name = tree.name
        if self.sim.spans is not None:
            # Idempotent: the serve layer may have opened this record at
            # offer time.
            self.sim.spans.query_begin(tree.name, self.sim.now)
        if self._serving:
            self._pump_soon()
        return program

    def run(self) -> DataflowReport:
        """Fire enabled cells until every query's root completes."""
        if not self._programs:
            raise MachineError("no queries submitted")
        return self.run_service()

    def run_service(self) -> DataflowReport:
        """Drive the machine until the event heap drains, then report.

        Queries may arrive mid-run via :meth:`submit` (each one pumps the
        firing loop); all of them must finish before the heap drains.
        """
        self._serving = True
        self._arm_machine_crash()
        self.sim.schedule(0.0, self._pump, label="pump")
        self.sim.run(max_events=self.max_events)
        unfinished = [
            p.tree.name for p in self._programs if not p.root.done
        ]
        if unfinished:
            raise MachineError(f"data-flow machine stalled on: {unfinished}")
        if self.txn is not None:
            # Clean shutdown: force the log, flush every dirty page, and
            # checkpoint — the sanitizer's dirty-page leak check runs next.
            self.txn.shutdown()
        self.sim.finalize_sanitizer()
        return DataflowReport(
            granularity=self.granularity,
            processors=self._processor_count,
            elapsed_ms=self.sim.now,
            firings=self.firings,
            arbitration_bytes=self.arbitration_bytes,
            distribution_bytes=self.distribution_bytes,
            results={
                p.tree.name: self._result_relation(p) for p in self._programs
            },
            query_times=dict(self._query_done_at),
            events_processed=self.sim.events_processed,
        )

    def _arm_machine_crash(self) -> None:
        """Schedule a whole-machine power cut if the plan draws one.

        Mirrors the ring machine: the strike raises
        :class:`repro.errors.CrashError` straight out of the event loop,
        and the crash harness picks recovery up from the stable store.
        """
        inj = self.sim.faults
        if inj is None:
            return
        spec = inj.armed_spec("machine_crash")
        if spec is None or spec.rate <= 0:
            return
        if self.txn is None:
            raise FaultError(
                "fault plan arms machine_crash but no transaction manager "
                "is attached (attach_recovery); a crash without durable "
                "state cannot be recovered"
            )
        if not inj.decide("machine_crash", "machine", spec.rate):
            return
        at_ms = spec.at_ms + inj.uniform("machine_crash", "machine", 0.0, spec.window_ms)

        def crash_now() -> None:
            inj.count("machine.crash", "machine")
            raise CrashError(
                f"machine crash fault at t={self.sim.now:.3f}ms "
                f"({len(self.txn.active)} transaction(s) in flight)"
            )

        self.sim.schedule_at(at_ms, crash_now, label="fault.machine_crash")

    def _result_relation(self, program: DataflowProgram) -> Relation:
        return Relation.from_rows(
            f"{program.tree.name}.result",
            program.root.output_schema,
            self._results.get(program.tree.name, []),
            page_bytes=self.page_bytes,
            validated=True,  # result rows came off distributed pages
        )

    # ------------------------------------------------------------------ firing loop

    def _pump(self) -> None:
        """Scan the memory section; enqueue every newly enabled firing."""
        for program in self._programs:
            for cell in program.cells:
                if cell.done:
                    continue  # can neither fire nor complete again
                for unit in cell.ready_firings(self.granularity):
                    self._launch(unit)
                self._check_cell_completion(cell)

    def _launch(self, unit: FiringUnit) -> None:
        cell = unit.cell
        cell.firings_outstanding += 1
        self.firings += 1
        nbytes = self._packet_bytes(unit)
        self.arbitration_bytes += nbytes

        query = self._tree_name_of(cell)

        def at_processor() -> None:
            cpu = self._cpu_ms(unit)
            self.processors.submit(
                cpu, lambda: self._fired(unit), nbytes=0, query=query
            )

        self.arbitration.submit(
            nbytes / self.network_rate,
            at_processor,
            nbytes=nbytes,
            query=query,
            span_kind="transit",
        )

    def _packet_bytes(self, unit: FiringUnit) -> int:
        c = self.model.packet_overhead_bytes
        if self.granularity != "tuple":
            return unit.payload_bytes + c
        # Section 3.3 accounting: every tuple (or tuple pair) is a packet.
        cell = unit.cell
        if isinstance(cell.node, JoinNode):
            outer_rows = sum(
                cell.operands[0].pages[p].row_count for s, p in unit.pages if s == 0
            )
            inner_rows = sum(
                cell.operands[1].pages[p].row_count for s, p in unit.pages if s == 1
            )
            w_o = cell.operands[0].schema.record_width
            w_i = cell.operands[1].schema.record_width
            return outer_rows * inner_rows * (w_o + w_i + c)
        width = cell.operands[unit.pages[0][0]].schema.record_width if unit.pages else 8
        return unit.payload_rows * (width + c)

    def _cpu_ms(self, unit: FiringUnit) -> float:
        cell = unit.cell
        ops = cell.cpu_cost_rows(unit)
        if isinstance(cell.node, JoinNode):
            return ops * self.model.join_pair_ms
        return ops * self.model.restrict_tuple_ms

    def _fired(self, unit: FiringUnit) -> None:
        cell = unit.cell
        rows = cell.execute(unit)
        cell.firings_outstanding -= 1
        self._emit(cell, rows)
        # New results (or freed processors) may enable more firings.
        self._pump()

    # ------------------------------------------------------------------ distribution

    def _emit(self, cell: Cell, rows: List[Row]) -> None:
        """Assemble result rows into pages; distribute completed pages."""
        buffer = self._assemblies[cell.cell_id]
        buffer.extend(rows)
        capacity = page_capacity(cell.output_schema, self.page_bytes)
        while len(buffer) >= capacity:
            page = Page(cell.output_schema, self.page_bytes)
            page.extend_unchecked(buffer[:capacity])  # kernel outputs are valid tuples
            del buffer[:capacity]
            self._distribute(cell, page)

    def _flush(self, cell: Cell) -> None:
        buffer = self._assemblies[cell.cell_id]
        if buffer:
            page = Page(cell.output_schema, self.page_bytes)
            page.extend_unchecked(buffer)  # never overflows: _emit drains full pages
            buffer.clear()
            self._distribute(cell, page, final=True)

    def _distribute(self, cell: Cell, page: Page, final: bool = False) -> None:
        nbytes = page.used_bytes + self.model.packet_overhead_bytes
        self.distribution_bytes += nbytes
        cell.firings_outstanding += 1  # page in flight counts as work

        def delivered() -> None:
            cell.firings_outstanding -= 1
            if cell.destinations:
                for destination, slot in cell.destinations:
                    destination.operands[slot].deliver(page)
            else:
                tree_name = self._tree_name_of(cell)
                rows = list(page.rows())
                self._results.setdefault(tree_name, []).extend(rows)
                txn = self._write_txns.get(tree_name)
                if txn is not None:
                    # WAL-stage the write root's output as it lands — a
                    # crash mid-run leaves genuine partial writes for undo.
                    self.txn.stage_rows(txn, rows)
            self._pump()

        self.distribution.submit(
            nbytes / self.network_rate,
            delivered,
            nbytes=nbytes,
            query=self._tree_name_of(cell),
            span_kind="transit",
        )

    # ------------------------------------------------------------------ completion

    def _check_cell_completion(self, cell: Cell) -> None:
        if cell.done or not cell.all_work_fired_and_done(self.granularity):
            return
        if self._assemblies[cell.cell_id]:
            self._flush(cell)
            return  # completion re-checked when the flush page lands
        cell.done = True
        for destination, slot in cell.destinations:
            destination.operands[slot].finish()
        if not cell.destinations:
            tree_name = self._tree_name_of(cell)
            if tree_name not in self._query_done_at:
                self._query_done_at[tree_name] = self.sim.now
                if isinstance(cell.node, (AppendNode, DeleteNode, UpdateNode)):
                    txn = self._write_txns.pop(tree_name, None)
                    _, all_rows = apply_write(
                        self.catalog,
                        cell.node,
                        self._results.get(tree_name, []),
                        self.page_bytes,
                        tm=self.txn if txn is not None else None,
                        txn=txn,
                    )
                    # Write queries report the target's whole new content.
                    self._results[tree_name] = all_rows
                rows = len(self._results.get(tree_name, []))
                if self.sim.spans is not None:
                    self.sim.spans.query_end(tree_name, self.sim.now, rows)
                if self.on_query_complete is not None:
                    self.on_query_complete(tree_name, self.sim.now, rows)
        self._pump_soon()

    def _pump_soon(self) -> None:
        self.sim.schedule(0.0, self._pump, label="pump")

    def _tree_name_of(self, cell: Cell) -> str:
        if cell.tree_name:
            return cell.tree_name
        # Fallback for cells built outside submit() (tests, tools): scan.
        for program in self._programs:
            if cell in program.cells:
                return program.tree.name
        raise MachineError(f"orphan cell {cell!r}")


def run_dataflow(
    catalog: Catalog,
    queries: Sequence[QueryTree],
    processors: int = 4,
    granularity: str = "page",
    **kwargs,
) -> DataflowReport:
    """Build a machine, submit ``queries``, run, and report."""
    machine = DataflowMachine(
        catalog, processors=processors, granularity=granularity, **kwargs
    )
    for tree in queries:
        machine.submit(tree)
    return machine.run()
