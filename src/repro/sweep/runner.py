"""Process-pool fan-out for embarrassingly parallel sweep points.

The headline experiments are sweeps: dozens of *independent* simulator
builds (queries x granularity x processor counts for Figure 3.1, IP
counts for the Section 4 ring sizing, three machine variants for the
ring-vs-DIRECT comparison).  Each point is deterministic and shares no
state with its neighbours, so they parallelize perfectly across worker
processes — the paper's own "run as fast as the hardware allows" applied
to the reproduction harness itself.

Contract: an experiment declares a **module-level point function** (so it
pickles by reference) taking only picklable keyword arguments and
returning a picklable value (plain dicts of numbers, in practice).
:func:`map_points` executes the points — serially by default, or across
``workers`` processes — and returns per-point results **in point order**,
so parallel output is byte-identical to serial output.

Observability: a sweep may run under an ambient :mod:`repro.obs` session
(``repro metrics figure_3_1 --workers 8``).  Worker processes cannot
record into the parent's registry, so each worker captures a fresh local
registry per point and ships a full-fidelity dump back; the parent merges
the dumps in point order, relabeling each worker's locally numbered
``run`` ids to exactly the ids serial execution would have assigned, and
advances the global run-id counter past them.  Tracing (a single global
event timeline) falls back to serial execution.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.errors import SimulationError


def effective_workers(workers: Optional[int], points: int) -> int:
    """Resolve a ``--workers`` request against the host and the sweep size.

    ``None`` and ``1`` mean serial; ``0`` means one worker per CPU; any
    other positive value is clamped to the number of points.  Negative
    values are rejected.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise SimulationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, points))


def _pool_context():
    """Prefer fork (cheap, Linux) and fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _run_point(fn: Callable, kwargs: Dict, capture_metrics: bool):
    """Execute one sweep point inside a worker process.

    Installs a fresh observability session (metrics-only, mirroring the
    parent's request) and resets the run-id counter to 1, so a point's
    metric labels depend only on the point itself — never on which worker
    ran it or what ran there before.  Returns ``(value, registry dump or
    None, run ids consumed)``.
    """
    obs.set_next_run_id(1)
    # capture_tally_samples: the parent replays raw tally observations in
    # point order, keeping merged statistics bit-identical to a serial run.
    session = obs.ObsSession(
        metrics=obs.MetricsRegistry(capture_tally_samples=True)
        if capture_metrics
        else obs.NULL_REGISTRY
    )
    previous = obs.install(session)
    try:
        value = fn(**kwargs)
    finally:
        obs.install(previous)
    consumed = obs.peek_run_id() - 1
    dump = session.metrics.dump() if capture_metrics else None
    return value, dump, consumed


def map_points(
    fn: Callable,
    points: Sequence[Dict],
    workers: Optional[int] = None,
) -> List:
    """Run ``fn(**point)`` for every point; results come back in point order.

    Serial (``workers`` in (None, 1), a single point, an ambient tracing
    session, or an armed span collector) calls ``fn`` inline under the
    ambient observability session — exactly the pre-sweep behaviour.
    Parallel fans the points out over a process pool and
    deterministically merges each worker's metrics dump back into the
    ambient registry (see the module docstring), so the two modes are
    interchangeable.  Tracing and span collection are single global
    timelines a worker process cannot write into, hence the fallback.
    """
    from repro.obs.spans import active_collector

    points = list(points)
    session = obs.ambient()
    n_workers = effective_workers(workers, len(points))
    if (
        n_workers <= 1
        or len(points) <= 1
        or session.tracer.enabled
        or active_collector() is not None
    ):
        return [fn(**point) for point in points]

    capture_metrics = session.metrics.enabled
    with ProcessPoolExecutor(
        max_workers=n_workers, mp_context=_pool_context()
    ) as pool:
        futures = [
            pool.submit(_run_point, fn, point, capture_metrics) for point in points
        ]
        outcomes = [future.result() for future in futures]

    values = []
    offset = obs.peek_run_id() - 1 if capture_metrics else 0
    for value, dump, consumed in outcomes:
        if capture_metrics and dump is not None:
            session.metrics.merge(dump, run_offset=offset)
            offset += consumed
        values.append(value)
    if capture_metrics:
        obs.set_next_run_id(offset + 1)
    return values
