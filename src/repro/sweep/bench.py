"""The ``repro bench`` harness: the repo's wall-clock perf baseline.

Runs each sweep experiment once (instrumented, metrics on) and records
wall-clock seconds plus simulator events/second into a JSON report —
``BENCH_sweeps.json`` by default.  A ``sim_core`` microbenchmark rides
along to anchor the raw event-loop throughput independently of any
workload.

The report schema (``repro-bench/v1``) is stable: existing keys keep
their names and meanings; new keys may be added.  Top level::

    schema        "repro-bench/v1"
    created_unix  wall-clock timestamp of the run
    host          {python, platform, cpu_count}
    quick         True for --quick
    scale         workload scale the sweeps ran at
    workers       sweep worker processes (1 = serial)
    experiments   [{experiment, wall_s, sim_events, events_per_sec,
                    points, rows}, ...]
    totals        {wall_s, sim_events, events_per_sec}

``sim_events`` is the merged ``sim.events`` counter across every
simulator the experiment built; ``points`` is the number of independent
sweep points the experiment fanned out.

**Trajectory** (``repro-bench/v2``): ``BENCH_sweeps.json`` holds the
perf history, not just the latest run — ``{schema, entries: [report,
...]}`` where each entry is a v1 report as above, oldest first.  ``repro
bench`` appends a new entry each run (a legacy single-report file is
upgraded in place), and ``repro bench --gate`` fails when any
experiment's events/sec drops more than :data:`GATE_THRESHOLD` below the
last committed entry — the CI job that runs it turns perf regressions
into red builds.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs

#: Default output path (repo root when run from there).
DEFAULT_OUT = "BENCH_sweeps.json"

BENCH_SCHEMA = "repro-bench/v1"

#: Schema of the trajectory file: a list of v1 reports, oldest first.
HISTORY_SCHEMA = "repro-bench/v2"

#: Default fractional events/sec drop (vs the last trajectory entry)
#: that fails the ``--gate`` check.
GATE_THRESHOLD = 0.2

#: Events scheduled+fired by the event-loop microbenchmark.
SIM_CORE_EVENTS = 200_000


@dataclass(frozen=True)
class BenchCase:
    """One benchmarked experiment: a runner plus per-mode kwargs."""

    name: str
    run: Callable
    quick_kwargs: Dict
    full_kwargs: Dict
    #: Sweep points the kwargs produce (for the report's ``points`` field).
    points: Callable[[Dict], int]

    def kwargs(self, quick: bool) -> Dict:
        return dict(self.quick_kwargs if quick else self.full_kwargs)


def _grid(field: str, factors: int = 1) -> Callable[[Dict], int]:
    return lambda kwargs: len(kwargs[field]) * factors


def bench_cases() -> List[BenchCase]:
    """The benchmarked sweeps (imported here to keep the CLI import light)."""
    from repro.experiments import (
        dataflow_machine,
        figure_3_1,
        figure_4_2,
        granularity_tuple,
        ring_vs_direct,
        serving,
    )

    return [
        BenchCase(
            "figure_3_1",
            figure_3_1.run,
            quick_kwargs=dict(processors=(2, 4), scale=0.05, selectivity=0.3),
            full_kwargs=dict(processors=(5, 10, 20), scale=0.25),
            points=_grid("processors", 2),  # x (page, relation)
        ),
        BenchCase(
            "figure_4_2",
            figure_4_2.run,
            quick_kwargs=dict(ips=(2, 4), scale=0.05, selectivity=0.3, controllers=12),
            full_kwargs=dict(ips=(5, 10, 25), scale=0.25),
            points=_grid("ips"),
        ),
        BenchCase(
            "ring_vs_direct",
            ring_vs_direct.run,
            quick_kwargs=dict(ips=(3,), scale=0.05, selectivity=0.3, controllers=12),
            full_kwargs=dict(ips=(10, 25), scale=0.25),
            points=_grid("ips", 3),  # x (direct, ring, ring-routed)
        ),
        BenchCase(
            "granularity_tuple",
            granularity_tuple.run,
            quick_kwargs=dict(processors=(3,), scale=0.05, selectivity=0.3),
            full_kwargs=dict(processors=(10, 30), scale=0.25),
            points=_grid("processors", 3),  # x (page, relation, tuple)
        ),
        BenchCase(
            "dataflow",
            dataflow_machine.run,
            quick_kwargs=dict(processors=(2, 8), scale=0.05),
            full_kwargs=dict(processors=(2, 8, 32), scale=0.1),
            points=_grid("processors", 3),  # x granularities
        ),
        BenchCase(
            "serving",
            serving.run,
            quick_kwargs=dict(
                machines=("ring",), rates=(20.0, 60.0), duration_ms=1500.0, scale=0.05
            ),
            full_kwargs=dict(
                machines=("ring", "direct"),
                rates=(10.0, 20.0, 40.0, 80.0),
                duration_ms=4000.0,
                scale=0.05,
            ),
            points=lambda kwargs: len(kwargs["machines"]) * len(kwargs["rates"]),
        ),
    ]


def _sim_core_entry() -> dict:
    """Raw event-loop throughput: schedule and fire SIM_CORE_EVENTS noops."""
    from repro.sim.engine import Simulator

    sim = Simulator()  # uninstrumented: measures the bare heap loop

    def noop() -> None:
        pass

    start = time.perf_counter()
    for i in range(SIM_CORE_EVENTS):
        sim.schedule(float(i % 97), noop, label="bench")
    sim.run()
    wall = time.perf_counter() - start
    return {
        "experiment": "sim_core",
        "wall_s": round(wall, 4),
        "sim_events": SIM_CORE_EVENTS,
        "events_per_sec": round(SIM_CORE_EVENTS / wall) if wall > 0 else 0,
        "points": 1,
        "rows": 0,
    }


def _spans_overhead_entry() -> dict:
    """Traced vs untraced serving wall time: what an armed span collector
    costs.  One small ring serving run executes twice — identical config,
    with and without an ambient :class:`SpanCollector` — and the entry
    carries both rates so the trajectory can watch the overhead drift.
    The simulations are byte-identical (the tracing identity gate), so
    ``sim_events`` is the same count on both sides by construction.
    """
    from repro.obs.spans import SpanCollector, collecting
    from repro.serve.service import ServeConfig, serve

    config = ServeConfig(machine="ring", rate_qps=40.0, duration_ms=800.0, scale=0.05)

    start = time.perf_counter()
    untraced = serve(config)
    untraced_wall = time.perf_counter() - start

    start = time.perf_counter()
    with collecting(SpanCollector()):
        serve(config)
    traced_wall = time.perf_counter() - start

    events = int(untraced["events_processed"])  # type: ignore[call-overload]
    wall = untraced_wall + traced_wall
    return {
        "experiment": "spans_overhead",
        "wall_s": round(wall, 4),
        "sim_events": 2 * events,
        "events_per_sec": round(2 * events / wall) if wall > 0 else 0,
        "points": 2,
        "rows": 0,
        "untraced_events_per_sec": round(events / untraced_wall)
        if untraced_wall > 0
        else 0,
        "traced_events_per_sec": round(events / traced_wall) if traced_wall > 0 else 0,
        "overhead_frac": round(traced_wall / untraced_wall - 1.0, 4)
        if untraced_wall > 0
        else 0.0,
    }


def _wal_overhead_entry() -> dict:
    """Write-transaction durability cost on the ring machine.

    The same mixed-stream shape runs twice, crash-free: a read-only
    stream (``write_fraction=0``) and a half-write stream with the WAL
    armed — update locking, page logging, commit forces, and fuzzy
    checkpoints all live.  ``overhead_frac`` is the wall-time ratio; the
    ``events_per_sec`` of the combined pair sits under the trajectory's
    >20% regression gate like every other row.
    """
    from repro.recovery.harness import run_crash_trial

    start = time.perf_counter()
    base = run_crash_trial(
        machine="ring", seed=7, write_fraction=0.0, crash_rate=0.0, queries=10
    )
    base_wall = time.perf_counter() - start

    start = time.perf_counter()
    walled = run_crash_trial(
        machine="ring", seed=7, write_fraction=0.5, crash_rate=0.0, queries=10
    )
    wal_wall = time.perf_counter() - start

    events = base.events + walled.events
    wall = base_wall + wal_wall
    return {
        "experiment": "wal_overhead",
        "wall_s": round(wall, 4),
        "sim_events": events,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "points": 2,
        "rows": 0,
        "read_events_per_sec": round(base.events / base_wall) if base_wall > 0 else 0,
        "write_events_per_sec": round(walled.events / wal_wall) if wal_wall > 0 else 0,
        "overhead_frac": round(wal_wall / base_wall - 1.0, 4) if base_wall > 0 else 0.0,
        "commits": walled.commits,
        "aborts": walled.aborts,
    }


def run_bench(
    quick: bool = True,
    scale: Optional[float] = None,
    workers: Optional[int] = None,
    only: Optional[Sequence[str]] = None,
) -> dict:
    """Run the bench suite and return the report dict (see module docstring)."""
    entries = [_sim_core_entry()] if not only or "sim_core" in only else []
    if not only or "spans_overhead" in only:
        entries.append(_spans_overhead_entry())
    if not only or "wal_overhead" in only:
        entries.append(_wal_overhead_entry())
    used_scale = None
    for case in bench_cases():
        if only and case.name not in only:
            continue
        kwargs = case.kwargs(quick)
        if scale is not None:
            kwargs["scale"] = scale
        if workers is not None:
            kwargs["workers"] = workers
        used_scale = kwargs.get("scale")
        with obs.observe(trace=False, metrics=True) as session:
            start = time.perf_counter()
            result = case.run(**kwargs)
            wall = time.perf_counter() - start
        events = int(session.metrics.value("sim.events"))
        entries.append(
            {
                "experiment": case.name,
                "wall_s": round(wall, 4),
                "sim_events": events,
                "events_per_sec": round(events / wall) if wall > 0 else 0,
                "points": case.points(kwargs),
                "rows": len(result.rows),
            }
        )
    total_wall = sum(e["wall_s"] for e in entries)
    total_events = sum(e["sim_events"] for e in entries)
    return {
        "schema": BENCH_SCHEMA,
        "created_unix": round(time.time(), 3),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "quick": quick,
        "scale": used_scale,
        "workers": workers if workers is not None else 1,
        "experiments": entries,
        "totals": {
            "wall_s": round(total_wall, 4),
            "sim_events": total_events,
            "events_per_sec": round(total_events / total_wall) if total_wall > 0 else 0,
        },
    }


def write_bench(report: dict, path: str = DEFAULT_OUT) -> None:
    """Write a bench report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_history(path: str = DEFAULT_OUT) -> dict:
    """The bench trajectory at ``path``; a missing file is an empty one.

    Accepts both file shapes: a v2 history is returned as-is, and a
    legacy single v1 report is wrapped as a one-entry history so the
    next append upgrades the file in place.
    """
    if not os.path.exists(path):
        return {"schema": HISTORY_SCHEMA, "entries": []}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("schema") == HISTORY_SCHEMA:
        return data
    return {"schema": HISTORY_SCHEMA, "entries": [data]}


def append_bench(report: dict, path: str = DEFAULT_OUT) -> dict:
    """Append ``report`` to the trajectory at ``path``; returns the history."""
    history = load_history(path)
    history["entries"].append(report)
    write_bench(history, path)
    return history


def compare_entries(prev: dict, new: dict, threshold: float = GATE_THRESHOLD) -> List[str]:
    """Regression descriptions for ``new`` against the older report ``prev``.

    Every experiment present in both reports — ``sim_core`` and the
    sweeps alike — must keep its events/sec within ``threshold`` of the
    old rate.  An empty list means the gate passes; experiments that
    appear in only one report are skipped (the suite may grow).
    """
    prev_rates = {e["experiment"]: e["events_per_sec"] for e in prev["experiments"]}
    failures: List[str] = []
    for entry in new["experiments"]:
        name = entry["experiment"]
        before = prev_rates.get(name)
        if not before:
            continue
        after = entry["events_per_sec"]
        if after < before * (1.0 - threshold):
            failures.append(
                f"{name}: {after} ev/s is {1.0 - after / before:.0%} below the "
                f"last trajectory entry ({before} ev/s; allowed drop {threshold:.0%})"
            )
    return failures
