"""Parallel sweep execution and the perf-baseline bench harness.

* :func:`map_points` — process-pool fan-out of independent sweep points
  with deterministic ordering and metrics merge (see
  :mod:`repro.sweep.runner`).
* :mod:`repro.sweep.bench` — the ``repro bench`` harness: wall-clock and
  events/second per sweep experiment, recorded to ``BENCH_sweeps.json``.
"""

from repro.sweep.runner import effective_workers, map_points

__all__ = ["effective_workers", "map_points"]
