"""``repro.check`` — the correctness-tooling layer.

Two prongs keep both simulators bit-deterministic and leak-free:

* :mod:`repro.check.lint` — an AST-based static linter with project
  rules R001-R010 (seeded randomness, wall-clock leaks, unordered
  iteration near event scheduling, float timestamp equality,
  acquire/release pairing, per-module lock order, effectful duration
  callables, mutable defaults, ambient contexts outside ``with``, and
  unsorted report serialization).  ``python -m repro check src`` gates
  CI, and :mod:`repro.check.flow` layers the interprocedural analyses
  (static deadlock detection F001, fusion-safety proofs F002) on top
  via ``repro check --flow``.
* :mod:`repro.check.sanitizer` — a runtime sanitizer the simulators can
  run under (``repro run <experiment> --sanitize``) that detects delay
  corruption, same-timestamp order hazards, resource-lease leaks, cache
  frame-accounting bugs, ring packet-conservation violations, and —
  through the ambient :class:`~repro.check.sanitizer.LockOrderWitness`
  — runtime lock-order inversions.

Only the sanitizer's entry points are re-exported here; the linter and
flow analyses are CLI/test tools and are imported on demand.
"""

from __future__ import annotations

from repro.check.sanitizer import (
    LockOrderWitness,
    Sanitizer,
    active_witness,
    is_active,
    sanitizing,
)

__all__ = [
    "LockOrderWitness",
    "Sanitizer",
    "active_witness",
    "is_active",
    "sanitizing",
]
