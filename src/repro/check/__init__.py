"""``repro.check`` — the correctness-tooling layer.

Two prongs keep both simulators bit-deterministic and leak-free:

* :mod:`repro.check.lint` — an AST-based static linter with project
  rules R001-R005 (seeded randomness, wall-clock leaks, unordered
  iteration near event scheduling, float timestamp equality, and
  acquire/release pairing).  ``python -m repro check src`` gates CI.
* :mod:`repro.check.sanitizer` — a runtime sanitizer the simulators can
  run under (``repro run <experiment> --sanitize``) that detects delay
  corruption, same-timestamp order hazards, resource-lease leaks, cache
  frame-accounting bugs, and ring packet-conservation violations.

Only the sanitizer's entry points are re-exported here; the linter is a
CLI/test tool and is imported on demand.
"""

from __future__ import annotations

from repro.check.sanitizer import Sanitizer, is_active, sanitizing

__all__ = ["Sanitizer", "is_active", "sanitizing"]
