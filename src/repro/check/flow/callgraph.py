"""A conservative name-based call graph over the project sources.

The graph is deliberately simple: Python has no static dispatch, so a
whole-program analysis that never misses an edge must over-approximate.
Resolution is by *name*, scoped by what the AST can see:

* ``foo(...)``        -> functions named ``foo`` in the same module, else
  every module-level function named ``foo`` anywhere in the project;
* ``self.foo(...)``   -> methods named ``foo`` on the lexically enclosing
  class, else every method named ``foo`` in the project (subclass and
  duck-typed dispatch both land here);
* ``obj.foo(...)``    -> every function or method named ``foo`` in the
  project.

Over-approximation is the right failure mode for the two clients: the
lock-order analysis may report a cycle that cannot happen (suppressable,
never silently missing a real one) and the effect analysis may classify
a pure function as effectful (fusion refuses a safe chain, never fuses
an unsafe one).

Everything iterates in sorted order so reports are byte-deterministic.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.check.lint import iter_python_files, module_rel


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    name: str  #: called attribute/function name (``foo`` in ``a.b.foo()``)
    receiver: str  #: dotted receiver text (``a.b``), "" for bare calls
    line: int
    col: int


@dataclass
class FunctionInfo:
    """One function or method definition in the indexed project."""

    qualname: str  #: ``repro/ring/master.py::MasterController.try_admit``
    module: str  #: ``repro/...``-relative path
    path: str  #: the path the file was loaded from (for findings)
    name: str  #: bare function name
    class_name: Optional[str]
    node: ast.AST = field(repr=False)
    line: int = 0
    calls: List[CallSite] = field(default_factory=list, repr=False)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


def _receiver_text(node: ast.AST) -> str:
    """Dotted-name text of a call receiver; "" when not a plain chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = _receiver_text(node.value)
        return f"{prefix}.{node.attr}" if prefix else node.attr
    return ""


def call_sites(node: ast.AST) -> Iterator[CallSite]:
    """Every call expression under ``node``, in source order."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Attribute):
            yield CallSite(
                name=func.attr,
                receiver=_receiver_text(func.value),
                line=sub.lineno,
                col=sub.col_offset,
            )
        elif isinstance(func, ast.Name):
            yield CallSite(name=func.id, receiver="", line=sub.lineno, col=sub.col_offset)


class CallGraph:
    """Function index plus name-based call resolution."""

    def __init__(self) -> None:
        #: qualname -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare name -> sorted qualnames of every def with that name
        self._by_name: Dict[str, List[str]] = {}
        #: (module, class, name) -> qualname for same-class resolution
        self._methods: Dict[Tuple[str, str, str], str] = {}
        #: (module, name) -> qualname for same-module function resolution
        self._module_level: Dict[Tuple[str, str], str] = {}

    # ------------------------------------------------------------------ build

    def add_module(self, source: str, path: str) -> None:
        """Index one file's defs and their call sites."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return  # R000 belongs to the linter; the graph skips the file
        module = module_rel(path)
        self._index_body(tree.body, module, path, class_name=None)

    def _index_body(
        self,
        body: Sequence[ast.stmt],
        module: str,
        path: str,
        class_name: Optional[str],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(node, module, path, class_name)
            elif isinstance(node, ast.ClassDef):
                self._index_body(node.body, module, path, class_name=node.name)

    def _add_function(
        self, node: ast.AST, module: str, path: str, class_name: Optional[str]
    ) -> None:
        name = node.name  # type: ignore[attr-defined]
        scoped = f"{class_name}.{name}" if class_name else name
        qualname = f"{module}::{scoped}"
        info = FunctionInfo(
            qualname=qualname,
            module=module,
            path=path,
            name=name,
            class_name=class_name,
            node=node,
            line=node.lineno,  # type: ignore[attr-defined]
            calls=sorted(
                call_sites(node), key=lambda c: (c.line, c.col, c.name)
            ),
        )
        self.functions[qualname] = info
        self._by_name.setdefault(name, []).append(qualname)
        if class_name is None:
            self._module_level[(module, name)] = qualname
        else:
            self._methods[(module, class_name, name)] = qualname
        # Nested defs are indexed too (closures can acquire locks).
        inner = [
            sub
            for sub in ast.iter_child_nodes(node)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        if inner:
            self._index_body(inner, module, path, class_name)

    def freeze(self) -> None:
        """Sort the name index for deterministic resolution order."""
        for qualnames in self._by_name.values():
            qualnames.sort()

    # ---------------------------------------------------------------- resolve

    def resolve(self, caller: FunctionInfo, site: CallSite) -> List[FunctionInfo]:
        """Possible callees of ``site`` made from ``caller`` (sorted)."""
        if site.receiver in ("self", "cls") and caller.class_name is not None:
            own = self._methods.get((caller.module, caller.class_name, site.name))
            if own is not None:
                return [self.functions[own]]
            return self._all_methods_named(site.name)
        if site.receiver == "":
            local = self._module_level.get((caller.module, site.name))
            if local is not None:
                return [self.functions[local]]
            return [
                self.functions[q]
                for q in self._by_name.get(site.name, ())
                if self.functions[q].class_name is None
            ]
        return [self.functions[q] for q in self._by_name.get(site.name, ())]

    def _all_methods_named(self, name: str) -> List[FunctionInfo]:
        return [
            self.functions[q]
            for q in self._by_name.get(name, ())
            if self.functions[q].class_name is not None
        ]

    def functions_named(self, name: str) -> List[FunctionInfo]:
        """Every def with the given bare name, sorted by qualname."""
        return [self.functions[q] for q in self._by_name.get(name, ())]

    def sorted_functions(self) -> List[FunctionInfo]:
        """All indexed functions in qualname order."""
        return [self.functions[q] for q in sorted(self.functions)]


def build_call_graph(paths: Sequence[str]) -> CallGraph:
    """Parse every ``.py`` file under ``paths`` into one call graph."""
    graph = CallGraph()
    for filename in iter_python_files(paths):
        if not os.path.isfile(filename):
            continue
        with open(filename, "r", encoding="utf-8") as handle:
            graph.add_module(handle.read(), filename)
    graph.freeze()
    return graph
