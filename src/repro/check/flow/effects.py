"""Effect analysis: fusion-safety proofs for operator charge chains.

Operator-loop fusion (:mod:`repro.sim.fusion`) pre-computes a chain's
per-link durations and collapses the cascade into one scheduled event.
That is only sound when every *duration callable* — the ``*_ms``
functions whose results feed the chain — is free of side effects:
evaluating them early (and exactly once) must be indistinguishable from
evaluating them at each link boundary.  PR 6 asserted this by
byte-identity testing; this module proves it statically.

Every function in the call graph is classified on a three-point effect
lattice::

    pure          depends on its arguments alone (fused_chain_end)
    duration-pure reads instance/module state, writes nothing
                  (ExecModel.join_cpu_ms: rows * self.join_pair_ms)
    effectful     writes any non-local state, or calls something that
                  does, or calls something the analysis cannot resolve

The classification is the least fixed point over the call graph:
``effect(f) = max(local(f), max(effect(callee) for resolvable callees))``
with unresolvable calls treated as effectful (a *proof* must not
depend on unseen code).  Exception construction directly under a
``raise`` is exempt — aborting deterministically is not an effect that
fusion can reorder.

A **chain site** is any function that calls ``_charge_fused`` or
``fused_chain_end``; its **obligations** are the ``*_ms`` calls it
makes.  A chain is *proven safe* when every obligation resolves and
classifies at or below duration-pure.  :class:`FusionSafetyReport`
aggregates the verdicts; :func:`repro.sim.fusion.resolve_fusion`
consults it and refuses fusion for machines whose chains are unproven.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.check.flow.callgraph import CallGraph, CallSite, FunctionInfo

PURE = "pure"
DURATION_PURE = "duration-pure"
EFFECTFUL = "effectful"

_RANK = {PURE: 0, DURATION_PURE: 1, EFFECTFUL: 2}

#: Builtins that neither mutate their arguments nor touch the world.
_PURE_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "bytes", "dict", "divmod", "enumerate",
        "float", "format", "frozenset", "getattr", "hasattr", "hash", "int",
        "isinstance", "issubclass", "len", "list", "max", "min", "pow",
        "range", "repr", "reversed", "round", "set", "sorted", "str", "sum",
        "tuple", "type", "zip",
    }
)

#: Receiver modules whose functions are pure by contract.
_PURE_MODULES = frozenset({"math"})

#: Calls that mark a chain site.
_CHAIN_MARKERS = frozenset({"_charge_fused", "fused_chain_end"})


@dataclass(frozen=True)
class ChainReport:
    """One fusion chain site and the verdicts on its obligations."""

    function: str  #: qualname of the chain-building function
    module: str
    path: str
    line: int  #: line of the chain marker call
    #: duration callable name -> resolved qualnames (may be empty)
    obligations: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: obligations that failed the proof, with the reason
    unsafe: Tuple[Tuple[str, str], ...]

    @property
    def safe(self) -> bool:
        return not self.unsafe


@dataclass
class FusionSafetyReport:
    """Classification of every function plus per-chain safety verdicts."""

    classifications: Dict[str, str] = field(default_factory=dict)
    chains: List[ChainReport] = field(default_factory=list)

    def chains_in(self, module_suffix: str) -> List[ChainReport]:
        """Chain reports whose module path ends with ``module_suffix``."""
        return [c for c in self.chains if c.module.endswith(module_suffix)]

    def module_proven_safe(self, module_suffix: str) -> bool:
        """True when the module has chains and every one is proven safe.

        A module with *no* discovered chains is **not** proven — a scan
        that silently finds nothing must read as a broken scan, not as a
        safety certificate.
        """
        chains = self.chains_in(module_suffix)
        return bool(chains) and all(chain.safe for chain in chains)

    def unsafe_chains(self) -> List[ChainReport]:
        return [c for c in self.chains if not c.safe]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (sorted, byte-stable)."""
        return {
            "schema": "repro-fusion-safety/v1",
            "chains": [
                {
                    "function": c.function,
                    "module": c.module,
                    "line": c.line,
                    "safe": c.safe,
                    "obligations": {
                        name: sorted(targets) for name, targets in c.obligations
                    },
                    "unsafe": [list(item) for item in c.unsafe],
                }
                for c in sorted(self.chains, key=lambda c: (c.module, c.line))
            ],
            "classifications": dict(sorted(self.classifications.items())),
        }


# ------------------------------------------------------------ local analysis


class _LocalScan(ast.NodeVisitor):
    """One function body's local effect facts (no call resolution yet)."""

    def __init__(self, root: ast.AST) -> None:
        self.effect = PURE
        self.reasons: List[str] = []
        self.calls: List[ast.Call] = []
        self._locals: Set[str] = set()
        self._raise_calls: Set[int] = set()
        self._collect_locals(root)
        self._root = root

    def _collect_locals(self, root: ast.AST) -> None:
        args = getattr(root, "args", None)
        if args is not None:
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                self._locals.add(arg.arg)
            if args.vararg:
                self._locals.add(args.vararg.arg)
            if args.kwarg:
                self._locals.add(args.kwarg.arg)
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self._locals.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._locals.add(node.name)
            elif isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        self._locals.add(target.id)

    def _demote(self, level: str, reason: str) -> None:
        if _RANK[level] > _RANK[self.effect]:
            self.effect = level
        if level is EFFECTFUL:
            self.reasons.append(reason)

    # -- traversal entry -----------------------------------------------------

    def run(self) -> None:
        root = self._root
        for fld, value in ast.iter_fields(root):
            if fld in ("returns", "decorator_list", "type_comment"):
                continue  # annotations/decorators are not evaluated per call
            if fld == "args":
                continue  # defaults evaluate at def time
            self._visit_field(value)

    def _visit_field(self, value: object) -> None:
        if isinstance(value, list):
            for item in value:
                if isinstance(item, ast.AST):
                    self.visit(item)
        elif isinstance(value, ast.AST):
            self.visit(value)

    # -- store / binding effects ---------------------------------------------

    def _check_store_target(self, target: ast.AST) -> None:
        for node in ast.walk(target):
            if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                kind = "attribute" if isinstance(node, ast.Attribute) else "subscript"
                self._demote(EFFECTFUL, f"{kind} store at line {node.lineno}")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store_target(node.target)
        if node.value is not None:
            self.visit(node.value)  # skip the annotation expression

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._demote(EFFECTFUL, f"global statement at line {node.lineno}")

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._demote(EFFECTFUL, f"nonlocal statement at line {node.lineno}")

    # -- reads ---------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self._demote(DURATION_PURE, "")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and node.id not in self._locals
            and not hasattr(builtins, node.id)
        ):
            self._demote(DURATION_PURE, "")

    # -- calls ---------------------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        # Exception construction under a raise is exempt: deterministic
        # aborts are not effects fusion could reorder.
        for sub in (node.exc, node.cause):
            if isinstance(sub, ast.Call):
                self._raise_calls.add(id(sub))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if id(node) not in self._raise_calls:
            self.calls.append(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs (and their calls) belong to the closure; a chain
        # site's nested continuations are scheduled, not evaluated here.
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


def _call_site_of(node: ast.Call) -> Optional[CallSite]:
    func = node.func
    if isinstance(func, ast.Attribute):
        from repro.check.flow.callgraph import _receiver_text

        return CallSite(
            name=func.attr,
            receiver=_receiver_text(func.value),
            line=node.lineno,
            col=node.col_offset,
        )
    if isinstance(func, ast.Name):
        return CallSite(name=func.id, receiver="", line=node.lineno, col=node.col_offset)
    return None


def _is_exempt_call(site: CallSite) -> bool:
    """Calls pure by contract: allowlisted builtins and ``math.*``."""
    if site.receiver == "" and site.name in _PURE_BUILTINS:
        return True
    root = site.receiver.split(".", 1)[0]
    return root in _PURE_MODULES


# ----------------------------------------------------------------- fixpoint


def classify_effects(graph: CallGraph) -> Dict[str, str]:
    """Effect class for every function in the graph (least fixed point)."""
    local: Dict[str, str] = {}
    dependencies: Dict[str, List[str]] = {}
    for info in graph.sorted_functions():
        scan = _LocalScan(info.node)
        scan.run()
        effect = scan.effect
        deps: List[str] = []
        for call in scan.calls:
            site = _call_site_of(call)
            if site is None:
                effect = EFFECTFUL  # *expr(...) — cannot resolve
                continue
            if _is_exempt_call(site):
                continue
            callees = graph.resolve(info, site)
            if not callees:
                effect = EFFECTFUL  # unresolved: no proof possible
                continue
            deps.extend(callee.qualname for callee in callees)
        local[info.qualname] = effect
        dependencies[info.qualname] = deps

    result = dict(local)
    changed = True
    while changed:
        changed = False
        for qualname in result:
            if result[qualname] is EFFECTFUL:
                continue
            level = result[qualname]
            for dep in dependencies[qualname]:
                dep_level = result.get(dep, EFFECTFUL)
                if _RANK[dep_level] > _RANK[level]:
                    level = dep_level
            if level != result[qualname]:
                result[qualname] = level
                changed = True
    return result


# ------------------------------------------------------------ chain extraction


def _chain_sites(graph: CallGraph) -> Iterator[Tuple[FunctionInfo, CallSite]]:
    """Functions that build fused chains, with the marker call site."""
    for info in graph.sorted_functions():
        for call in info.calls:
            if call.name in _CHAIN_MARKERS:
                yield info, call
                break  # one report per function


def analyze_fusion_safety(
    graph: CallGraph, classifications: Optional[Dict[str, str]] = None
) -> FusionSafetyReport:
    """Prove (or refuse to prove) every fusion chain in the graph safe."""
    if classifications is None:
        classifications = classify_effects(graph)
    report = FusionSafetyReport(classifications=classifications)
    for info, marker in _chain_sites(graph):
        # Skip the marker definitions themselves (exec_model helpers).
        if info.name in _CHAIN_MARKERS:
            continue
        obligations: List[Tuple[str, Tuple[str, ...]]] = []
        unsafe: List[Tuple[str, str]] = []
        for call in info.calls:
            if not call.name.endswith("_ms") or call.name in _CHAIN_MARKERS:
                continue
            callees = graph.resolve(info, call)
            names = tuple(sorted(c.qualname for c in callees))
            obligations.append((call.name, names))
            if not callees:
                unsafe.append(
                    (call.name, f"line {call.line}: duration callable not resolved")
                )
                continue
            for callee in callees:
                level = classifications.get(callee.qualname, EFFECTFUL)
                if _RANK[level] > _RANK[DURATION_PURE]:
                    unsafe.append(
                        (
                            call.name,
                            f"line {call.line}: {callee.qualname} is {level}",
                        )
                    )
        report.chains.append(
            ChainReport(
                function=info.qualname,
                module=info.module,
                path=info.path,
                line=marker.line,
                obligations=tuple(obligations),
                unsafe=tuple(unsafe),
            )
        )
    report.chains.sort(key=lambda c: (c.module, c.line))
    return report
