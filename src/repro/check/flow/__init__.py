"""``repro.check.flow`` — interprocedural concurrency & effect analysis.

The per-function AST linter (:mod:`repro.check.lint`, rules R001-R010)
proves *local* properties; this subpackage proves the two properties
that span call graphs:

* :mod:`repro.check.flow.lockorder` — every ``LockManager`` acquire site
  is extracted, the inter-site lock-order graph is built by walking the
  call graph through the code each site executes while its locks are
  held, and cycles are reported as potential deadlocks together with the
  witness call chains that realise each edge.
* :mod:`repro.check.flow.effects` — operator callables reachable from
  the :mod:`repro.sim.fusion` charge chains are classified on a small
  effect lattice (pure < duration-pure < effectful); chains whose
  duration callables are not statically proven effect-free are unsafe to
  fuse, and :func:`repro.sim.fusion.resolve_fusion` refuses them.

Both are built on :mod:`repro.check.flow.callgraph`, a conservative
name-based call graph over the parsed project sources.  The driver is
:func:`repro.check.flow.analyze.analyze_paths` (``repro check --flow``).
"""

from __future__ import annotations

from repro.check.flow.analyze import analyze_paths, flow_self_test
from repro.check.flow.callgraph import CallGraph, build_call_graph
from repro.check.flow.effects import (
    EFFECTFUL,
    DURATION_PURE,
    PURE,
    FusionSafetyReport,
    analyze_fusion_safety,
)
from repro.check.flow.lockorder import LockOrderAnalysis, analyze_lock_order

__all__ = [
    "CallGraph",
    "DURATION_PURE",
    "EFFECTFUL",
    "FusionSafetyReport",
    "LockOrderAnalysis",
    "PURE",
    "analyze_fusion_safety",
    "analyze_lock_order",
    "analyze_paths",
    "build_call_graph",
    "flow_self_test",
]
