"""Interprocedural lock-order analysis: static deadlock detection.

Two queries deadlock when they acquire the same locks in opposite
orders.  The static side of the guard works at the granularity the
source exposes — *acquire sites*:

1. every call of ``try_acquire``, or of ``acquire`` on a receiver whose
   name mentions a lock (``self.locks.try_acquire(...)``,
   ``self.lock_a.acquire(...)``), is an acquire site; the **lock
   identity** is the terminal receiver name (``locks``, ``lock_a``);
2. from each site, the code executed *while that lock is held* is the
   rest of the enclosing function (lexically after the acquire, up to a
   ``release`` on the same lock) plus everything reachable from it
   through the call graph — walking into a callee stops extending the
   region past a ``release`` of the held lock inside that callee;
3. every acquire site found inside the region adds an edge
   ``held-lock -> acquired-lock`` annotated with the **witness call
   chain** that realises it;
4. a cycle among the lock nodes — including a self-edge, which is a
   re-entrant acquisition of a non-reentrant manager — is a potential
   deadlock and is reported with one witness chain per edge.

The region is the *synchronous* continuation: callbacks handed to
``Simulator.schedule`` run outside the acquiring call tree and are
deliberately not followed (the runtime lock-order witness in
:mod:`repro.check.sanitizer` covers cross-event ordering).  Like the
call graph itself the analysis over-approximates — a reported cycle is
a *potential* deadlock; a clean report is the proof of absence at this
granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.flow.callgraph import CallGraph, CallSite, FunctionInfo

#: Call names that acquire a lock set.
_ACQUIRE_NAMES = frozenset({"try_acquire"})
#: ``acquire``/``release`` count only on lock-like receivers, so Resource
#: leases (``resource.acquire(label=...)``) stay out of scope — they are
#: R005's and the sanitizer's job.
_GENERIC_ACQUIRE = "acquire"
_GENERIC_RELEASE = "release"


def _terminal_name(receiver: str) -> str:
    """``locks`` for ``self.locks``; the last dotted segment."""
    return receiver.rsplit(".", 1)[-1] if receiver else ""


def _is_lockish(receiver: str) -> bool:
    return "lock" in _terminal_name(receiver).lower()


def _lock_identity(site: CallSite) -> Optional[str]:
    """The lock a call site acquires, or None when it is not an acquire."""
    if site.name in _ACQUIRE_NAMES:
        return _terminal_name(site.receiver) or "<lock>"
    if site.name == _GENERIC_ACQUIRE and _is_lockish(site.receiver):
        return _terminal_name(site.receiver)
    return None


def _release_identity(site: CallSite) -> Optional[str]:
    """The lock a call site releases, or None."""
    if site.name == _GENERIC_RELEASE and _is_lockish(site.receiver):
        return _terminal_name(site.receiver)
    return None


@dataclass(frozen=True)
class AcquireSite:
    """One static lock-acquisition site."""

    lock: str
    function: str  #: qualname of the enclosing function
    module: str
    path: str
    line: int
    col: int

    def render(self) -> str:
        return f"{self.module}:{self.line} ({self.function.split('::')[-1]})"


@dataclass(frozen=True)
class LockEdge:
    """``source.lock`` is held when ``target`` acquires ``target.lock``."""

    source: AcquireSite
    target: AcquireSite
    #: Witness call chain from the holding site to the acquiring site.
    chain: Tuple[str, ...]

    def render_chain(self) -> str:
        return " -> ".join(self.chain)


@dataclass
class LockCycle:
    """A cycle in the lock-order graph (a potential deadlock)."""

    locks: Tuple[str, ...]
    edges: Tuple[LockEdge, ...]

    def render(self) -> str:
        ring = " -> ".join(self.locks + (self.locks[0],))
        witnesses = "; ".join(
            f"[{edge.source.lock}->{edge.target.lock}] {edge.render_chain()}"
            for edge in self.edges
        )
        return f"lock-order cycle {ring}: {witnesses}"


@dataclass
class LockOrderAnalysis:
    """Everything the lock-order pass learned about one source tree."""

    sites: List[AcquireSite]
    edges: List[LockEdge]
    cycles: List[LockCycle]


def analyze_lock_order(graph: CallGraph) -> LockOrderAnalysis:
    """Run the analysis over an already-built call graph."""
    sites: List[AcquireSite] = []
    for info in graph.sorted_functions():
        for call in info.calls:
            lock = _lock_identity(call)
            if lock is not None:
                sites.append(
                    AcquireSite(
                        lock=lock,
                        function=info.qualname,
                        module=info.module,
                        path=info.path,
                        line=call.line,
                        col=call.col,
                    )
                )
    edges: List[LockEdge] = []
    for site in sites:
        edges.extend(_edges_from(graph, site))
    return LockOrderAnalysis(sites=sites, edges=edges, cycles=_find_cycles(edges))


# ------------------------------------------------------------- region walking


def _calls_under_lock(
    info: FunctionInfo, lock: str, after: Optional[Tuple[int, int]]
) -> List[CallSite]:
    """``info``'s calls made while ``lock`` is (still) held.

    ``after`` marks the acquire position for the site's own function; for
    callees the whole body is in the region.  Either way the region ends
    at the first subsequent ``release`` of the same lock — the lexical
    approximation of the hold scope.
    """
    region: List[CallSite] = []
    for call in info.calls:  # already in (line, col) order
        position = (call.line, call.col)
        if after is not None and position <= after:
            continue
        if _release_identity(call) == lock:
            break
        region.append(call)
    return region


def _edges_from(graph: CallGraph, origin: AcquireSite) -> List[LockEdge]:
    """BFS the under-lock region of ``origin`` for nested acquire sites."""
    start = graph.functions.get(origin.function)
    if start is None:  # pragma: no cover - sites come from the same graph
        return []
    edges: List[LockEdge] = []
    seen_edges: Set[Tuple[str, str, int]] = set()
    visited: Set[str] = {start.qualname}
    # Queue of (function, chain-to-it, acquire position to skip past).
    queue: List[Tuple[FunctionInfo, Tuple[str, ...], Optional[Tuple[int, int]]]] = [
        (start, (f"{origin.module}:{origin.line} acquire {origin.lock!r}",), (origin.line, origin.col))
    ]
    while queue:
        info, chain, after = queue.pop(0)
        for call in _calls_under_lock(info, origin.lock, after):
            lock = _lock_identity(call)
            if lock is not None:
                key = (info.qualname, lock, call.line)
                if key in seen_edges:
                    continue
                seen_edges.add(key)
                target = AcquireSite(
                    lock=lock,
                    function=info.qualname,
                    module=info.module,
                    path=info.path,
                    line=call.line,
                    col=call.col,
                )
                edges.append(
                    LockEdge(
                        source=origin,
                        target=target,
                        chain=chain + (f"{info.module}:{call.line} acquire {lock!r}",),
                    )
                )
                continue
            for callee in graph.resolve(info, call):
                if callee.qualname in visited:
                    continue
                visited.add(callee.qualname)
                queue.append(
                    (
                        callee,
                        chain + (f"{info.module}:{call.line} -> {callee.qualname.split('::')[-1]}",),
                        None,
                    )
                )
    return edges


# ------------------------------------------------------------ cycle detection


def _find_cycles(edges: Sequence[LockEdge]) -> List[LockCycle]:
    """Cycles among lock nodes: SCCs of size > 1 plus self-edges."""
    adjacency: Dict[str, Dict[str, LockEdge]] = {}
    for edge in edges:
        bucket = adjacency.setdefault(edge.source.lock, {})
        # Keep the first witness per (from, to) pair (BFS = shortest chain).
        bucket.setdefault(edge.target.lock, edge)
        adjacency.setdefault(edge.target.lock, {})

    cycles: List[LockCycle] = []
    for component in _sccs(adjacency):
        if len(component) == 1:
            lock = component[0]
            self_edge = adjacency.get(lock, {}).get(lock)
            if self_edge is None:
                continue
            cycles.append(LockCycle(locks=(lock,), edges=(self_edge,)))
            continue
        ordered = sorted(component)
        witness: List[LockEdge] = []
        for lock in ordered:
            # One outgoing edge per member that stays inside the component.
            for other in sorted(adjacency.get(lock, {})):
                if other in component and other != lock:
                    witness.append(adjacency[lock][other])
                    break
        cycles.append(LockCycle(locks=tuple(ordered), edges=tuple(witness)))
    cycles.sort(key=lambda cycle: cycle.locks)
    return cycles


def _sccs(adjacency: Dict[str, Dict[str, LockEdge]]) -> List[List[str]]:
    """Tarjan's strongly connected components, iterative, sorted input."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = counter[0]
                lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            recursed = False
            successors = sorted(adjacency.get(node, {}))
            for offset in range(child_index, len(successors)):
                succ = successors[offset]
                if succ not in index:
                    work.append((node, offset + 1))
                    work.append((succ, 0))
                    recursed = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index[succ])
            if recursed:
                continue
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)
    return components
