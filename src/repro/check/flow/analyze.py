"""Driver for ``repro check --flow``: analyses -> findings.

Two finding families, numbered apart from the per-function lint rules
(R-prefixed) because they are whole-program properties:

========  ==============================================================
F001      lock-order cycle (potential deadlock); the message carries one
          witness call chain per edge of the cycle
F002      fusion chain whose duration callables are not statically
          proven effect-free (fusing could reorder or drop effects)
========  ==============================================================

Findings reuse :class:`repro.check.lint.Finding` and honor the same
``# repro: allow[...]`` line suppressions, so the CLI renders lint and
flow output through one pipeline.  :func:`flow_self_test` seeds a
deadlock cycle and an effectful fused operator through the analyses and
fails if either goes quiet — the same gate-for-the-gate contract as
``repro.check.lint.self_test``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Set

from repro.check.flow.callgraph import CallGraph, build_call_graph
from repro.check.flow.effects import FusionSafetyReport, analyze_fusion_safety
from repro.check.flow.lockorder import analyze_lock_order
from repro.check.lint import Finding, _suppressed_lines, iter_python_files

LOCK_CYCLE_RULE = "F001"
FUSION_SAFETY_RULE = "F002"


def flow_findings(graph: CallGraph) -> List[Finding]:
    """Run both interprocedural analyses over one call graph."""
    findings: List[Finding] = []

    lock_order = analyze_lock_order(graph)
    for cycle in lock_order.cycles:
        anchor = cycle.edges[0].source if cycle.edges else None
        if anchor is None:  # pragma: no cover - cycles always carry edges
            continue
        findings.append(
            Finding(
                rule=LOCK_CYCLE_RULE,
                path=anchor.path,
                line=anchor.line,
                col=anchor.col,
                message=f"potential deadlock: {cycle.render()}",
            )
        )

    safety = analyze_fusion_safety(graph)
    for chain in safety.unsafe_chains():
        reasons = "; ".join(f"{name}: {why}" for name, why in chain.unsafe)
        findings.append(
            Finding(
                rule=FUSION_SAFETY_RULE,
                path=chain.path,
                line=chain.line,
                col=0,
                message=(
                    f"fusion chain in {chain.function.split('::')[-1]} "
                    f"not proven safe: {reasons}"
                ),
            )
        )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_paths(paths: Sequence[str]) -> List[Finding]:
    """Build the call graph under ``paths`` and report flow findings.

    ``# repro: allow[F001]``-style comments on the flagged line suppress
    a finding exactly as they do for lint rules.
    """
    graph = build_call_graph(paths)
    findings = flow_findings(graph)
    if not findings:
        return findings
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    kept: List[Finding] = []
    for finding in findings:
        if finding.path not in suppressions:
            allowed: Dict[int, Set[str]] = {}
            if os.path.isfile(finding.path):
                with open(finding.path, "r", encoding="utf-8") as handle:
                    allowed = _suppressed_lines(handle.read())
            suppressions[finding.path] = allowed
        if finding.rule in suppressions[finding.path].get(finding.line, ()):
            continue
        kept.append(finding)
    return kept


# ---------------------------------------------------------------------- self-test

#: Canonical seeded violations, one per flow finding family.  Each is a
#: standalone module the analyses must flag when indexed on its own.
SEEDED_FLOW_VIOLATIONS = {
    LOCK_CYCLE_RULE: (
        "class Worker:\n"
        "    def grab_ab(self, request):\n"
        "        self.lock_a.acquire(request)\n"
        "        self.lock_b.acquire(request)\n"
        "        self.lock_b.release(request)\n"
        "        self.lock_a.release(request)\n"
        "\n"
        "    def grab_ba(self, request):\n"
        "        self.lock_b.acquire(request)\n"
        "        self.lock_a.acquire(request)\n"
        "        self.lock_a.release(request)\n"
        "        self.lock_b.release(request)\n"
    ),
    FUSION_SAFETY_RULE: (
        "class Operator:\n"
        "    def scan_cost_ms(self, rows):\n"
        "        self.calls = self.calls + 1\n"
        "        return rows * 0.25\n"
        "\n"
        "    def charge(self, rows):\n"
        "        total = fused_chain_end([self.scan_cost_ms(rows)])\n"
        "        return total\n"
    ),
}

_SELF_TEST_PATH = "repro/sim/_flowtest.py"


def _findings_for_snippet(snippet: str) -> List[Finding]:
    graph = CallGraph()
    graph.add_module(snippet, _SELF_TEST_PATH)
    graph.freeze()
    return flow_findings(graph)


def flow_self_test() -> List[str]:
    """Problems with the flow analyses themselves (empty == healthy)."""
    problems: List[str] = []
    for rule_id, snippet in sorted(SEEDED_FLOW_VIOLATIONS.items()):
        hits = [f for f in _findings_for_snippet(snippet) if f.rule == rule_id]
        if not hits:
            problems.append(f"{rule_id}: seeded violation not detected")
            continue
        if rule_id == LOCK_CYCLE_RULE and not any(
            "->" in f.message and "acquire" in f.message for f in hits
        ):
            problems.append(f"{rule_id}: cycle report carries no witness chain")
    return problems
