"""Output renderers for ``repro check`` findings.

One pipeline for both finding families (lint R-rules and flow
F-analyses), four formats:

``text``
    ``path:line:col: RULE message`` lines plus a count — the terminal
    default.
``json``
    A stable machine-readable document (keys sorted).
``sarif``
    Minimal SARIF 2.1.0 for code-scanning upload; one run, one driver,
    rule metadata included so viewers show the short description.
``github``
    GitHub Actions workflow commands (``::error file=...``) so findings
    annotate the offending lines inline on a PR.

Exit-code contract (documented in the README): ``repro check`` exits 0
with no findings, 1 when any finding survives suppression, 2 when the
``--self-test`` gate finds the analyzers themselves broken.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Iterable, List

from repro.check.lint import Finding

#: Short descriptions surfaced in SARIF rule metadata and annotations.
RULE_DESCRIPTIONS = {
    "R000": "file does not parse",
    "R001": "ad-hoc random calls outside the seeded RNG module",
    "R002": "wall-clock reads inside simulator packages",
    "R003": "iteration over unordered sets in scheduling code",
    "R004": "float equality on simulation timestamps",
    "R005": "Resource.acquire without a paired release",
    "R006": "inconsistent lock acquisition order within a module",
    "R007": "side effects inside a *_ms duration callable",
    "R008": "mutable default argument in simulation/serving code",
    "R009": "ambient context used outside a with statement",
    "R010": "json serialization without sort_keys=True",
    "F001": "interprocedural lock-order cycle (potential deadlock)",
    "F002": "fusion chain not statically proven effect-free",
}


def render_text(findings: Iterable[Finding]) -> str:
    lines = [f.render() for f in findings]
    lines.append(f"{len(lines)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    items = [asdict(f) for f in findings]
    return json.dumps({"findings": items, "count": len(items)}, indent=2, sort_keys=True)


def render_github(findings: Iterable[Finding]) -> str:
    """GitHub Actions ``::error`` workflow commands, one per finding."""
    lines: List[str] = []
    for finding in findings:
        message = finding.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule}::{message}"
        )
    if not lines:
        return "::notice::repro check: 0 finding(s)"
    return "\n".join(lines)


def render_sarif(findings: Iterable[Finding]) -> str:
    """Minimal SARIF 2.1.0 document for code-scanning upload."""
    results = []
    used_rules = set()
    for finding in findings:
        used_rules.add(finding.rule)
        results.append(
            {
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/")
                            },
                            "region": {
                                "startLine": finding.line,
                                # SARIF columns are 1-based; AST cols 0-based.
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": RULE_DESCRIPTIONS.get(rule_id, rule_id)},
        }
        # Always publish the full rule table: a clean run should still
        # tell the viewer which checks ran.
        for rule_id in sorted(RULE_DESCRIPTIONS)
    ]
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
    "github": render_github,
}

FORMATS = tuple(sorted(_RENDERERS))


def render(findings: Iterable[Finding], fmt: str) -> str:
    """Render findings in ``fmt`` (one of :data:`FORMATS`)."""
    try:
        renderer = _RENDERERS[fmt]
    except KeyError:
        raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}") from None
    return renderer(list(findings))
