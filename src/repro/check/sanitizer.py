"""Runtime simulation sanitizer: dynamic determinism & leak checks.

The static linter (:mod:`repro.check.lint`) proves properties about the
*source*; this module checks the properties only a *run* can witness:

* **delay sanity** — scheduling with a NaN/infinite delay silently corrupts
  the future-event list's ordering (NaN compares false against everything,
  so the heap invariant breaks); a negative delay rewinds the clock.
* **tie auditability** — two pending events at the *bit-identical* simulated
  time are ordered only by scheduling sequence.  That order is deterministic
  exactly when every schedule call is itself deterministic; the sanitizer
  requires every participant in such a tie to carry a non-empty label so a
  divergent replay can be traced to the offending site (unlabeled tie
  participants are un-auditable and are reported as order hazards).
* **lease leaks** — a :meth:`repro.sim.resources.Resource.acquire` without a
  matching ``release`` holds a server forever.
* **cache frame accounting** — pinned-frame leaks at end of run, and
  double-reserve (more frame reservations than capacity) at allocation time.
* **ring packet conservation** — every packet inserted into a ring's shift
  register must also be removed (Section 4's insertion protocol); a wedge
  between the two is a lost or duplicated delivery.

Violations raise :class:`repro.errors.SanitizerError` whose message ends
with a breadcrumb of the most recently fired events (the same labels the
:mod:`repro.obs` tracer records), so a failure points at simulated time and
context rather than just a Python stack.

Zero-cost when off: the :class:`repro.sim.engine.Simulator` holds ``None``
instead of a sanitizer unless sanitize mode is requested, mirroring the
pre-bound observability pattern — a disabled run pays one ``is not None``
check per event.

Enable per-simulator (``Simulator(sanitize=True)``) or ambiently for a
block (every simulator *constructed inside* picks it up)::

    from repro import check

    with check.sanitizing():
        report = run_benchmark(catalog, queries, processors=8)

The ``repro run <experiment> --sanitize`` CLI flag wraps the experiment in
exactly this context manager.
"""

from __future__ import annotations

import math
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SanitizerError

__all__ = [
    "LockOrderWitness",
    "Sanitizer",
    "active_witness",
    "is_active",
    "sanitizing",
]

#: Ambient sanitize mode; read once by each Simulator at construction.
_active: bool = False
#: Ambient lock-order witness; consulted by LockManager on every grant.
_witness: Optional["LockOrderWitness"] = None


def is_active() -> bool:
    """True when simulators built right now should sanitize."""
    return _active


def active_witness() -> Optional["LockOrderWitness"]:
    """The ambient lock-order witness, or None outside ``sanitizing()``."""
    return _witness


@contextmanager
def sanitizing() -> Iterator[None]:
    """Enable sanitize mode for simulators constructed inside the block.

    Also arms a fresh :class:`LockOrderWitness` for the block, so every
    ``LockManager`` grant inside is order-checked at runtime.
    """
    global _active, _witness
    previous, previous_witness = _active, _witness
    _active = True
    _witness = LockOrderWitness()
    try:
        yield
    finally:
        _active, _witness = previous, previous_witness


class LockOrderWitness:
    """Runtime complement of the static lock-order analysis (F001).

    The static pass proves the *source* admits no acquisition cycle at
    module granularity; this witness checks the orders a run actually
    exhibits at relation granularity, which the static pass cannot see
    (relation names are data).  Every acquisition is recorded as
    ``(query, lock, site)``; acquiring ``b`` while holding ``a``
    establishes the global edge ``a -> b``.  A later acquisition that
    would establish ``b -> a`` is an inversion: two in-flight queries
    could each hold one lock and wait forever on the other.  The raise
    names both sites — the one acquiring against the established order
    and the one that established it.

    ``LockManager`` grants each query's whole set atomically (one
    :meth:`record_grant` per admission), so a run that stays inside it
    can never trip the witness; the witness is the guard for the day
    that invariant is relaxed (item 4's sharded multi-ring admission
    acquires per shard).
    """

    def __init__(self) -> None:
        #: query -> [(lock, site)] in acquisition order, currently held.
        self._held: Dict[str, List[Tuple[str, str]]] = {}
        #: (first, second) -> (site acquiring first, site acquiring second)
        self._edges: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self.acquisitions = 0

    def record(self, query: str, lock: str, site: str) -> None:
        """One lock acquisition by ``query`` at source/site ``site``."""
        self.record_grant(query, ((lock, site),))

    def record_grant(self, query: str, locks: Sequence[Tuple[str, str]]) -> None:
        """One *atomic* grant of a whole lock set to ``query``.

        Deadlock needs hold-and-wait; an all-or-nothing grant never waits
        while holding, so the locks *within* one grant are unordered with
        respect to each other and establish no edges.  Edges (and
        inversion checks) run only against locks ``query`` already held
        from earlier grants.
        """
        held = self._held.setdefault(query, [])
        for lock, site in locks:
            for prior_lock, prior_site in held:
                if prior_lock == lock:
                    continue
                reverse = self._edges.get((lock, prior_lock))
                if reverse is not None:
                    raise SanitizerError(
                        f"lock-order inversion: {site} acquires {lock!r} "
                        f"while holding {prior_lock!r}, but {reverse[1]} "
                        f"acquired {prior_lock!r} while holding {lock!r}; "
                        f"two queries interleaving these orders deadlock"
                    )
                self._edges.setdefault((prior_lock, lock), (prior_site, site))
        held.extend(locks)
        self.acquisitions += len(locks)

    def release(self, query: str) -> None:
        """``query`` dropped its whole lock set (all-at-once release)."""
        self._held.pop(query, None)

    @property
    def edge_count(self) -> int:
        """Distinct lock-order edges observed so far."""
        return len(self._edges)


class Sanitizer:
    """Per-simulator dynamic checker.

    The engine calls :meth:`on_schedule` / :meth:`on_fire` from its hot
    path; components (resources, caches, rings) register *finish checks*
    at construction, and the owning machine runs them via
    :meth:`repro.sim.engine.Simulator.finalize_sanitizer` once the run has
    drained.
    """

    #: Fired events kept for the breadcrumb trail.
    TRAIL_LENGTH = 8

    def __init__(self) -> None:
        self._trail: Deque[Tuple[float, str]] = deque(maxlen=self.TRAIL_LENGTH)
        #: Pending events per exact time value: [count, unlabeled_count].
        self._pending: Dict[float, List[int]] = {}
        self._finish_checks: List[Tuple[str, Callable[[], List[str]]]] = []
        self.events_audited = 0
        self.finished = False

    # -- breadcrumbs ---------------------------------------------------------

    def breadcrumb(self) -> str:
        """The recent-event trail, newest last."""
        if not self._trail:
            return "trail: (no events fired yet)"
        steps = " -> ".join(
            f"{label or '<unlabeled>'}@{time:.3f}" for time, label in self._trail
        )
        return f"trail: {steps}"

    def fail(self, message: str) -> None:
        """Raise a :class:`SanitizerError` carrying the breadcrumb trail."""
        raise SanitizerError(f"{message} [{self.breadcrumb()}]")

    # -- engine hooks --------------------------------------------------------

    def on_schedule(
        self, now: float, delay: float, label: str, at: Optional[float] = None
    ) -> None:
        """Audit one ``schedule(delay, ...)`` call made at time ``now``.

        ``at`` carries the exact timestamp when the caller scheduled an
        absolute time (``schedule_abs``): re-deriving ``now + delay`` can
        land an ulp off, and the tie bookkeeping must key on the same bits
        :meth:`on_fire` will later see.
        """
        if math.isnan(delay):
            self.fail(f"scheduled an event with a NaN delay (label={label!r})")
        if math.isinf(delay):
            self.fail(f"scheduled an event with an infinite delay (label={label!r})")
        if delay < 0:
            self.fail(
                f"scheduled an event {-delay} ms into the past (label={label!r})"
            )
        time = now + delay if at is None else at
        entry = self._pending.get(time)
        if entry is None:
            self._pending[time] = [1, 0 if label else 1]
            return
        # A tie: relative order is decided by scheduling sequence alone.
        # Every participant must be labeled, or a divergence between two
        # runs could never be traced to its site.
        if not label or entry[1]:
            self.fail(
                f"same-timestamp event-order hazard at t={time}: "
                f"{entry[0] + 1} events tie and at least one is unlabeled "
                f"(new label={label!r}); label both sides or stagger them"
            )
        entry[0] += 1

    def on_fire(self, time: float, label: str) -> None:
        """Record one fired event (breadcrumb + tie bookkeeping)."""
        self.events_audited += 1
        self._trail.append((time, label))
        self._forget_pending(time, label)

    def on_drop(self, time: float, label: str) -> None:
        """A cancelled event left the heap without firing."""
        self._forget_pending(time, label)

    def _forget_pending(self, time: float, label: str) -> None:
        entry = self._pending.get(time)
        if entry is None:
            return
        entry[0] -= 1
        if not label and entry[1]:
            entry[1] -= 1
        if entry[0] <= 0:
            del self._pending[time]

    # -- component finish checks ---------------------------------------------

    def register_finish_check(
        self, name: str, check: Callable[[], List[str]]
    ) -> None:
        """Register an end-of-run invariant; ``check`` returns violations."""
        self._finish_checks.append((name, check))

    def finish(self) -> None:
        """Run every registered end-of-run check; raise on any violation."""
        self.finished = True
        violations: List[str] = []
        for name, check in self._finish_checks:
            violations.extend(f"{name}: {v}" for v in check())
        if violations:
            self.fail(
                f"{len(violations)} invariant violation(s) at end of run: "
                + "; ".join(violations)
            )
