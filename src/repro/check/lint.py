"""The ``repro check`` determinism linter.

A small AST-based static pass over the repo's own sources enforcing the
invariants that keep simulation runs bit-for-bit reproducible:

========  ==============================================================
R001      no ad-hoc ``random`` module calls outside ``repro/sim/random.py``
R002      no wall-clock reads (``time.time()``, ``datetime.now()``) inside
          simulator packages
R003      no iteration over bare ``set``/``frozenset``/``dict.keys()`` in
          scheduling or packet-emitting modules unless order is forced
          (``sorted(...)`` or an insertion-ordered container)
R004      no float ``==``/``!=`` on simulation timestamps
R005      every ``Resource.acquire`` lexically paired with a ``release``
          or used as a context manager
========  ==============================================================

Findings carry ``path:line:col``; a finding is suppressed by putting
``# repro: allow[RNNN]`` on the flagged line.  There is deliberately no
``--fix`` mode — each rule points at a design decision, not a mechanical
rewrite.

The public entry points are :func:`lint_paths` (walk files/directories)
and :func:`self_test` (seed each rule's canonical violation through the
linter and fail if any rule goes quiet — the CI gate that the gate
itself still works).
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import asdict, dataclass
from typing import Iterable, Iterator, List, Sequence

#: Matches ``# repro: allow[R001]`` / ``# repro: allow[R001,R003]``.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def module_rel(path: str) -> str:
    """The ``repro/...``-relative form of ``path`` used for rule scoping.

    Rules scope on package paths (``repro/sim/...``); the linter may be
    handed absolute paths, ``src/``-prefixed paths, or temp-dir copies, so
    we key on the last ``repro/`` segment.  Paths with no ``repro/``
    segment scope as their basename (unscoped rules still apply).
    """
    posix = path.replace(os.sep, "/")
    marker = "repro/"
    index = posix.rfind("/" + marker)
    if index >= 0:
        return posix[index + 1 :]
    if posix.startswith(marker):
        return posix
    return posix.rsplit("/", 1)[-1]


def _suppressed_lines(source: str) -> dict:
    """Map line number -> set of rule ids allowed on that line.

    A line may carry several ``allow[...]`` groups and each group may
    list several comma-separated ids; all of them are honored.
    """
    allowed: dict = {}
    for number, text in enumerate(source.splitlines(), start=1):
        ids = {
            rule.strip()
            for match in _ALLOW_RE.finditer(text)
            for rule in match.group(1).split(",")
            if rule.strip()
        }
        if ids:
            allowed[number] = ids
    return allowed


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one file's text; returns findings sorted by location."""
    from repro.check.rules import ALL_RULES

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="R000",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    rel = module_rel(path)
    allowed = _suppressed_lines(source)
    findings: List[Finding] = []
    for rule in ALL_RULES:
        if not rule.applies_to(rel):
            continue
        for line, col, message in rule.check(tree):
            if rule.rule_id in allowed.get(line, ()):
                continue
            findings.append(
                Finding(rule=rule.rule_id, path=path, line=line, col=col, message=message)
            )
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``."""
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(source, filename))
    return findings


def render_text(findings: Iterable[Finding]) -> str:
    lines = [f.render() for f in findings]
    lines.append(f"{len(lines)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    items = [asdict(f) for f in findings]
    return json.dumps({"findings": items, "count": len(items)}, indent=2, sort_keys=True)


# ---------------------------------------------------------------------- self-test

#: One canonical violation per rule, written as it would appear in a
#: scheduling module.  ``self_test`` feeds each through the linter and
#: demands the rule fires — catching a rule that silently stopped
#: matching (the static-analysis analogue of a test for the tests).
SEEDED_VIOLATIONS = {
    "R001": "import random\nrng = random.Random(7)\n",
    "R002": "import time\nstamp = time.time()\n",
    "R003": "pending: set = set()\nfor item in pending:\n    print(item)\n",
    "R004": "def f(now, deadline):\n    return now == deadline\n",
    "R005": "def f(resource):\n    resource.acquire(label='x')\n",
    "R006": (
        "def grab_ab(self, request):\n"
        "    self.lock_a.acquire(request)\n"
        "    self.lock_b.acquire(request)\n"
        "\n"
        "def grab_ba(self, request):\n"
        "    self.lock_b.acquire(request)\n"
        "    self.lock_a.acquire(request)\n"
    ),
    "R007": (
        "def scan_cost_ms(self, rows):\n"
        "    self.calls = self.calls + 1\n"
        "    return rows * 0.25\n"
    ),
    "R008": "def f(pending=[]):\n    return pending\n",
    "R009": "def f():\n    ctx = sanitizing()\n    return ctx\n",
    "R010": "import json\ndef f(report):\n    return json.dumps(report)\n",
    "R011": (
        "def deliver_update(self, page, row):\n"
        "    page.mutate_row(0, row)\n"
    ),
}

#: Scoped rules are exercised against a path inside their scope.
_SELF_TEST_PATH = "repro/sim/_selftest.py"

#: Rules whose scope excludes the default path pick their own stand-in.
_SELF_TEST_PATHS = {
    "R011": "repro/ring/_selftest.py",
}


def self_test() -> List[str]:
    """Return a list of problems (empty == every rule fires and suppresses)."""
    problems: List[str] = []
    for rule_id, snippet in sorted(SEEDED_VIOLATIONS.items()):
        test_path = _SELF_TEST_PATHS.get(rule_id, _SELF_TEST_PATH)
        hits = [f for f in lint_source(snippet, test_path) if f.rule == rule_id]
        if not hits:
            problems.append(f"{rule_id}: seeded violation not detected")
            continue
        suppressed = _suppress_all(snippet, rule_id)
        still = [f for f in lint_source(suppressed, test_path) if f.rule == rule_id]
        if still:
            problems.append(f"{rule_id}: allow[] comment did not suppress the finding")
    # One line can violate two rules; a single comma-separated allow[]
    # group must silence both.
    multi = (
        "import time, random\n"
        "x = random.random() + time.time()  # repro: allow[R001,R002]\n"
    )
    if lint_source(multi, _SELF_TEST_PATH):
        problems.append("allow[R001,R002]: comma-separated ids not honored")
    return problems


def _suppress_all(snippet: str, rule_id: str) -> str:
    """Append an allow comment to every line of ``snippet``."""
    return "\n".join(
        f"{line}  # repro: allow[{rule_id}]" if line.strip() else line
        for line in snippet.splitlines()
    )
