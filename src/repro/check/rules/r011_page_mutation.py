"""R011 — machine code mutates pages only through logged transactions.

The durability contract (DESIGN.md §14) is write-ahead logging: every
in-place page or heap-file mutation a machine performs must be staged
through the transaction layer so redo/undo images exist before the
bytes move.  A bare ``page.mutate_row(...)`` or ``heap.delete_where(...)``
in machine code is an unlogged write — invisible to restart, silently
divergent after a crash.

The rule is local and *fails closed*: a call to one of the mutating
entry points is flagged unless the enclosing function visibly holds a
transaction handle (a ``txn`` name, a ``.txn`` attribute such as the
machines' ``self.txn`` manager, or a ``stage_rows``/``apply_write``
call) — the lexical evidence that the write is being logged.  Proving
the handle is actually *used* for this write is the flow analyses' job;
here absence of any handle is already a finding.  Suppress deliberate
exceptions with ``# repro: allow[R011]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.rules.base import Rule, Violation, in_packages

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: The machine packages: code that executes query packets against pages.
_SCOPE = ("repro/ring/", "repro/direct/", "repro/dataflow/")

#: In-place mutation entry points of Page / HeapFile.  Names generic
#: enough to collide with stdlib containers (``append``, ``update``,
#: ``insert``, ``clear``) are left to the staging-layer review; these
#: four only exist on the storage substrate.
_MUTATORS = frozenset({"mutate_row", "delete_where", "insert_many", "vacuum"})

#: Lexical evidence that the enclosing function works through the
#: transaction layer.
_TXN_NAMES = frozenset({"txn", "tm"})
_TXN_CALLS = frozenset({"stage_rows", "apply_write", "begin", "commit"})


def _has_txn_evidence(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in _TXN_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _TXN_NAMES:
            return True
        if isinstance(node, ast.arg) and node.arg in _TXN_NAMES:
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _TXN_CALLS
        ):
            return True
    return False


class PageMutationRule(Rule):
    rule_id = "R011"

    def applies_to(self, module: str) -> bool:
        return in_packages(module, _SCOPE)

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, _FUNCTION_NODES):
                yield from self._check_function(node)

    def _check_function(self, func: ast.AST) -> Iterator[Violation]:
        logged = _has_txn_evidence(func)
        # Stop at nested defs: an inner function is its own scope and is
        # visited by the outer ast.walk in check().
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop(0)
            if isinstance(node, _FUNCTION_NODES):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and not logged
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"unlogged page mutation {node.func.attr!r} in machine "
                    f"code: {func.name!r} holds no transaction handle "
                    "(txn/tm/stage_rows/apply_write), so this write has "
                    "no redo/undo images and vanishes on crash recovery",
                )


RULE = PageMutationRule()
