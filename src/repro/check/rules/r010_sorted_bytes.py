"""R010 — serialized report bytes are key-sorted.

Reports, traces, and TSDB exports are compared byte-for-byte by the
identity oracles and by CI artifact diffs.  ``json.dumps`` without
``sort_keys=True`` serializes dict keys in insertion order, so two runs
that build the same mapping along different code paths produce
different bytes for equal data — the diff noise then hides real
regressions.  Every ``json.dumps(...)`` / ``json.dump(...)`` call must
pass ``sort_keys=True`` (a literal, so the intent survives review).

The same hazard applies to hand-rolled serialization iterating a set
into an output buffer; that side is covered by R003 in scheduling
modules — this rule owns the ``json`` boundary, project-wide.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.rules.base import Rule, Violation


def _is_json_serialize(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in ("dump", "dumps"):
        value = func.value
        return isinstance(value, ast.Name) and value.id == "json"
    return False


def _sorts_keys(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "sort_keys":
            return bool(
                isinstance(keyword.value, ast.Constant) and keyword.value.value is True
            )
        if keyword.arg is None:
            return True  # **kwargs: cannot prove, do not flag
    return False


class SortedBytesRule(Rule):
    rule_id = "R010"

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and _is_json_serialize(node)
                and not _sorts_keys(node)
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "json serialization without sort_keys=True; report "
                    "bytes must not depend on dict insertion order",
                )


RULE = SortedBytesRule()
