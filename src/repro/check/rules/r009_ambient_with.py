"""R009 — ambient contexts are entered with ``with``.

The ambient toggles (:func:`repro.check.sanitizer.sanitizing`,
``injecting``, ``collecting``, ``scheduling``, ``fusing``) flip
process-global state and rely on their ``finally`` blocks to restore
it.  Calling one without entering it does nothing; entering it manually
(``ctx.__enter__()``) leaks the global flip past the first exception.
Either way the damage is invisible locally and surfaces as cross-run
nondeterminism three modules away.

A call to an ambient context passes only when it is

* the context expression of a ``with`` / ``async with`` item, or
* the argument of an ``ExitStack.enter_context(...)`` /
  ``enter_async_context(...)`` call (the dynamic equivalent).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.check.rules.base import Rule, Violation

#: The ambient context-manager factories, by bare or attribute name.
_AMBIENT_NAMES = frozenset(
    {"sanitizing", "injecting", "collecting", "scheduling", "fusing"}
)
_ENTER_NAMES = frozenset({"enter_context", "enter_async_context"})


def _called_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class AmbientWithRule(Rule):
    rule_id = "R009"

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        sanctioned: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    sanctioned.add(id(item.context_expr))
            elif isinstance(node, ast.Call) and _called_name(node) in _ENTER_NAMES:
                for arg in node.args:
                    sanctioned.add(id(arg))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _called_name(node)
            if name in _AMBIENT_NAMES and id(node) not in sanctioned:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"ambient context {name}(...) used outside a with "
                    "statement; its global flip is only restored by the "
                    "context exit — use 'with' or ExitStack.enter_context",
                )


RULE = AmbientWithRule()
