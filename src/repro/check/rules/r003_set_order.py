"""R003 — scheduling and packet-emitting code never iterates a bare set.

``set``/``frozenset`` iteration order depends on ``PYTHONHASHSEED`` (for
str/bytes elements) and on insertion/deletion history, so a loop over one
can reorder scheduled events or emitted packets between runs.  Same for
``dict.keys()`` views — iterate the dict itself (Python dicts are
insertion-ordered) so the intent is explicit.  The fix is ``sorted(...)``
around the iterable or an insertion-ordered ``Dict[K, None]`` in place of
the set.

Set-typed names are inferred from annotations (``x: Set[int]``,
``self.pending: frozenset``, dataclass fields) and from assignments of
``set()``/``frozenset()``/set literals, within the linted module.
Membership tests and other order-insensitive uses are fine — only
iteration positions (``for``/comprehensions) are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.check.rules.base import SIMULATION_PACKAGES, Rule, Violation, in_packages

_SET_TYPE_NAMES = frozenset(
    {"Set", "FrozenSet", "MutableSet", "AbstractSet", "set", "frozenset"}
)
_WRAPPER_NAMES = frozenset({"Optional", "Union"})


def _annotation_is_set(node: ast.AST) -> bool:
    """True when the *outermost* type of the annotation is a set type."""
    if isinstance(node, ast.Name):
        return node.id in _SET_TYPE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_TYPE_NAMES
    if isinstance(node, ast.Subscript):
        outer = node.value
        name = (
            outer.id
            if isinstance(outer, ast.Name)
            else outer.attr if isinstance(outer, ast.Attribute) else ""
        )
        if name in _SET_TYPE_NAMES:
            return True
        if name in _WRAPPER_NAMES:
            inner = node.slice
            elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            return any(_annotation_is_set(e) for e in elements)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_is_set(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return False
    return False


def _value_is_set(node: ast.AST) -> bool:
    """True for ``set(...)``/``frozenset(...)`` calls, set literals/comps."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class SetOrderRule(Rule):
    rule_id = "R003"

    def applies_to(self, module: str) -> bool:
        return in_packages(module, SIMULATION_PACKAGES)

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        names, attrs = self._collect_set_typed(tree)
        for node in ast.walk(tree):
            for iterable in self._iteration_positions(node):
                reason = self._unordered(iterable, names, attrs)
                if reason is not None:
                    yield (
                        iterable.lineno,
                        iterable.col_offset,
                        f"iteration over {reason} has no deterministic order; "
                        "wrap in sorted(...) or use an insertion-ordered "
                        "Dict[K, None]",
                    )

    @staticmethod
    def _iteration_positions(node: ast.AST):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter

    @staticmethod
    def _collect_set_typed(tree: ast.AST) -> Tuple[Set[str], Set[str]]:
        names: Set[str] = set()
        attrs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                if not _annotation_is_set(node.annotation):
                    continue
                if isinstance(node.target, ast.Name):
                    # Class-body annotations (dataclass fields) surface as
                    # instance attributes too; recording both is the
                    # conservative choice — the name *is* set-typed.
                    names.add(node.target.id)
                    attrs.add(node.target.id)
                elif isinstance(node.target, ast.Attribute):
                    attrs.add(node.target.attr)
            elif isinstance(node, ast.Assign) and _value_is_set(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        attrs.add(target.attr)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = node.args
                for arg in (
                    arguments.posonlyargs + arguments.args + arguments.kwonlyargs
                ):
                    if arg.annotation is not None and _annotation_is_set(arg.annotation):
                        names.add(arg.arg)
        return names, attrs

    @staticmethod
    def _unordered(node: ast.AST, names: Set[str], attrs: Set[str]) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"{func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr == "keys":
                return "dict.keys()"
            return None
        if isinstance(node, ast.Name) and node.id in names:
            return f"set-typed name {node.id!r}"
        if isinstance(node, ast.Attribute) and node.attr in attrs:
            return f"set-typed attribute .{node.attr}"
        return None


RULE = SetOrderRule()
