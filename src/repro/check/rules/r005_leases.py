"""R005 — every ``Resource.acquire`` is lexically paired with its release.

A lease acquired and never released deadlocks the simulated resource (the
runtime sanitizer reports the leak at end of run; this rule catches it at
review time).  An ``.acquire(...)`` call passes when any of these hold in
the *same* function scope:

* it is the context expression of a ``with`` statement,
* the scope also contains a ``.release(...)`` call,
* its lease is returned to the caller (ownership escapes by design).

A bare ``resource.acquire(...)`` whose lease is discarded or stored with
no lexically visible release is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.check.rules.base import Rule, Violation

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class LeaseRule(Rule):
    rule_id = "R005"

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        with_contexts: Set[int] = set()
        returned: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
            elif isinstance(node, ast.Return) and node.value is not None:
                returned.add(id(node.value))
        for scope_body in self._scopes(tree):
            acquires, has_release = self._scan(scope_body)
            if has_release:
                continue
            for call in acquires:
                if id(call) in with_contexts or id(call) in returned:
                    continue
                yield (
                    call.lineno,
                    call.col_offset,
                    ".acquire(...) with no lexically paired .release(...) "
                    "or context manager; use 'with resource.acquire(...):' "
                    "or release the lease in this function",
                )

    @classmethod
    def _scopes(cls, tree: ast.AST) -> Iterator[List[ast.stmt]]:
        """Yield each function body (and the module body) as one scope."""
        yield tree.body  # type: ignore[attr-defined]
        for node in ast.walk(tree):
            if isinstance(node, _FUNCTION_NODES):
                yield node.body

    @classmethod
    def _scan(cls, body: List[ast.stmt]) -> Tuple[List[ast.Call], bool]:
        """Acquire calls and release-presence within one scope.

        Traversal stops at nested function boundaries — those are their
        own scopes (a release inside a nested callback *is* still paired
        work, but it runs later under different state, so the rule keeps
        pairing strictly lexical and nested callbacks count as their own
        scope; suppress with ``# repro: allow[R005]`` when a callback
        legitimately carries the release).
        """
        acquires: List[ast.Call] = []
        has_release = False
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, _FUNCTION_NODES):
                continue
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "acquire":
                    acquires.append(node)
                elif node.func.attr == "release":
                    has_release = True
            stack.extend(ast.iter_child_nodes(node))
        return acquires, has_release


RULE = LeaseRule()
