"""R004 — no exact ``==``/``!=`` on simulation timestamps.

Simulated times are floats accumulated through addition; two logically
simultaneous events can differ in the last ulp depending on the order the
delays were summed.  An exact comparison therefore encodes a latent
platform/ordering dependence.  Compare with ``<=``/``>=`` windows, or
carry an integer sequence number when identity matters (the engine's heap
already does).

Heuristic: a comparison operand is "time-like" when it is a name or
attribute called ``now``/``timestamp``/``deadline`` or ending in ``_at``,
``_time``, ``_ms``, or ``_deadline``.  Comparisons against ``None``,
strings, or booleans are ignored (identity checks, tags).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.rules.base import SIMULATION_PACKAGES, Rule, Violation, in_packages

_TIME_NAMES = frozenset({"now", "timestamp", "deadline"})
_TIME_SUFFIXES = ("_at", "_time", "_ms", "_deadline")


def _timelike(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    return name in _TIME_NAMES or name.endswith(_TIME_SUFFIXES)


def _non_numeric_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (str, bool))
    )


class FloatEqRule(Rule):
    rule_id = "R004"

    def applies_to(self, module: str) -> bool:
        return in_packages(module, SIMULATION_PACKAGES)

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _non_numeric_constant(left) or _non_numeric_constant(right):
                    continue
                if _timelike(left) or _timelike(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"exact float {symbol} on a simulation timestamp; "
                        "compare with a tolerance window or an integer "
                        "sequence number",
                    )


RULE = FloatEqRule()
