"""R001 — all randomness flows through :class:`repro.sim.random.RandomStreams`.

Ad-hoc ``random.Random(...)`` / ``random.random()`` (or any other draw
from the module-level shared generator) creates a stream whose state
depends on import order and call interleaving, so adding randomness to
one subsystem silently perturbs every other.  Named streams keep each
consumer independent and every run replayable from ``(seed, name)``.

Annotations (``rng: random.Random``) are fine — only *calls* are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.rules.base import Rule, Violation, call_target

#: Everything callable on the ``random`` module that draws from or
#: constructs a generator.
_RANDOM_CALLS = frozenset(
    {
        "Random",
        "SystemRandom",
        "random",
        "seed",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "getrandbits",
        "gauss",
        "expovariate",
    }
)

#: The one module allowed to construct generators.
_EXEMPT = "repro/sim/random.py"


class RngRule(Rule):
    rule_id = "R001"

    def applies_to(self, module: str) -> bool:
        return module != _EXEMPT

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            value, attr = call_target(node)
            if value == "random" and attr in _RANDOM_CALLS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"random.{attr}() creates an unnamed RNG stream; "
                    "use repro.sim.random.RandomStreams instead",
                )


RULE = RngRule()
