"""R008 — no mutable default arguments in simulation or serving code.

A ``def f(queue=[])`` default is evaluated once at definition time and
shared across every call.  In ordinary code that is a latent bug; in
this codebase it is a *determinism* bug — state smuggled between
queries through a default argument makes run N+1 depend on run N, which
the byte-identity oracles will catch only long after the cause is cold.
Use ``None`` and materialise inside the body, or a
``dataclasses.field(default_factory=...)``.

Flagged defaults: ``list``/``dict``/``set`` literals and
comprehensions, and bare ``list()``/``dict()``/``set()``/
``collections.deque()``/``bytearray()`` constructor calls.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.check.rules.base import SIMULATION_PACKAGES, Rule, Violation, in_packages

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE = SIMULATION_PACKAGES + ("repro/serve/",)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "deque", "bytearray"})


def _mutable_kind(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
        return "comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in _MUTABLE_CALLS:
            return f"{name}() call"
    return None


class MutableDefaultsRule(Rule):
    rule_id = "R008"

    def applies_to(self, module: str) -> bool:
        return in_packages(module, _SCOPE)

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                kind = _mutable_kind(default)
                if kind is not None:
                    yield (
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument ({kind}); defaults are "
                        "shared across calls — use None and materialise in "
                        "the body",
                    )


RULE = MutableDefaultsRule()
