"""R006 — one module, one lock order.

The interprocedural lock-order pass (``repro check --flow``, F001)
proves the absence of cross-module acquisition cycles; this rule is its
cheap local complement: within a single module, two functions that
acquire the same pair of locks in opposite orders are an inversion
waiting for the scheduler to interleave them.  The fix is to pick one
global order (the ``LockManager`` convention: sorted shared, then
sorted exclusive) and stick to it.

An *acquire site* is a ``try_acquire(...)`` call, or an ``acquire(...)``
call on a receiver whose terminal name mentions a lock
(``self.lock_a.acquire(...)``); the lock identity is that terminal
name.  The first order observed in the file (top to bottom) is taken as
the module's convention; later inversions are flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from repro.check.rules.base import SIMULATION_PACKAGES, Rule, Violation, in_packages

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _lock_name(node: ast.Call) -> str:
    """The lock a call acquires, or "" when it is not an acquire site."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return ""
    terminal = ""
    value = func.value
    if isinstance(value, ast.Name):
        terminal = value.id
    elif isinstance(value, ast.Attribute):
        terminal = value.attr
    if func.attr == "try_acquire":
        return terminal or "<lock>"
    if func.attr == "acquire" and "lock" in terminal.lower():
        return terminal
    return ""


class LockOrderRule(Rule):
    rule_id = "R006"

    def applies_to(self, module: str) -> bool:
        return in_packages(module, SIMULATION_PACKAGES)

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        # (first, second) -> occurrences of acquiring `first` then `second`,
        # positioned at the second acquire.
        orders: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        for node in ast.walk(tree):
            if isinstance(node, _FUNCTION_NODES):
                self._record(node, orders)
        flagged: List[Violation] = []
        for (first, second), positions in orders.items():
            if first >= second:
                continue  # handle each unordered pair once
            reverse = orders.get((second, first))
            if not reverse:
                continue
            forward_start = min(positions)
            reverse_start = min(reverse)
            # The order seen first in the file is the module's convention.
            if forward_start <= reverse_start:
                convention, conv_line, offenders = (first, second), forward_start[0], reverse
            else:
                convention, conv_line, offenders = (second, first), reverse_start[0], positions
            for line, col in offenders:
                flagged.append(
                    (
                        line,
                        col,
                        f"locks {convention[1]!r} and {convention[0]!r} acquired "
                        f"in inverted order; this module acquires "
                        f"{convention[0]!r} before {convention[1]!r} "
                        f"(established at line {conv_line})",
                    )
                )
        flagged.sort()
        yield from flagged

    @staticmethod
    def _record(
        func: ast.AST, orders: Dict[Tuple[str, str], List[Tuple[int, int]]]
    ) -> None:
        held: List[str] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            lock = _lock_name(node)
            if not lock or lock in held:
                continue
            for earlier in held:
                orders.setdefault((earlier, lock), []).append(
                    (node.lineno, node.col_offset)
                )
            held.append(lock)


RULE = LockOrderRule()
