"""R007 — duration callables (``*_ms``) are effect-free.

Operator fusion (:mod:`repro.sim.fusion`) evaluates a chain's duration
callables early and exactly once; any side effect inside one is
reordered or dropped relative to the unfused cascade.  The
interprocedural proof lives in ``repro check --flow`` (F002); this rule
is the local fast path that catches the obvious cases at the definition
site, whole-program analysis not required:

* assignments (plain, augmented, annotated) or deletions through an
  attribute or subscript — mutating ``self`` or shared containers,
* ``global`` / ``nonlocal`` declarations,
* ``print(...)`` calls.

Any function or method whose name ends in ``_ms`` is in scope: the
suffix is the project-wide naming contract for duration callables
(``join_cpu_ms``, ``access_time_ms``), which is exactly what the fusion
layer keys on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.rules.base import SIMULATION_PACKAGES, Rule, Violation, in_packages

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
#: hw.py hosts the device timing models fused chains charge against.
_SCOPE = SIMULATION_PACKAGES + ("repro/hw.py", "repro/serve/")


def _store_targets(node: ast.AST) -> Iterator[ast.AST]:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Attribute, ast.Subscript)) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            yield sub


class FusableEffectsRule(Rule):
    rule_id = "R007"

    def applies_to(self, module: str) -> bool:
        return in_packages(module, _SCOPE)

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, _FUNCTION_NODES) and node.name.endswith("_ms"):
                yield from self._check_body(node)

    def _check_body(self, func: ast.AST) -> Iterator[Violation]:
        # Manual stack so traversal stops at nested defs — closures are
        # scheduled continuations, not part of this callable's evaluation.
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop(0)
            if isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
                for target in _store_targets(node):
                    kind = (
                        "attribute" if isinstance(target, ast.Attribute) else "subscript"
                    )
                    yield (
                        target.lineno,
                        target.col_offset,
                        f"{kind} write inside duration callable "
                        f"{func.name!r}; *_ms functions feed fused chains "
                        "and must be effect-free",
                    )
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                keyword = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{keyword} declaration inside duration callable "
                    f"{func.name!r}; *_ms functions must be effect-free",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"print() inside duration callable {func.name!r}; "
                    "*_ms functions must be effect-free",
                )


RULE = FusableEffectsRule()
