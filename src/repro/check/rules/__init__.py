"""The ``repro check`` rule registry — one module per rule."""

from __future__ import annotations

from typing import List

from repro.check.rules.base import Rule
from repro.check.rules.r001_rng import RULE as R001
from repro.check.rules.r002_wallclock import RULE as R002
from repro.check.rules.r003_set_order import RULE as R003
from repro.check.rules.r004_float_eq import RULE as R004
from repro.check.rules.r005_leases import RULE as R005
from repro.check.rules.r006_lock_order import RULE as R006
from repro.check.rules.r007_fusable_effects import RULE as R007
from repro.check.rules.r008_mutable_defaults import RULE as R008
from repro.check.rules.r009_ambient_with import RULE as R009
from repro.check.rules.r010_sorted_bytes import RULE as R010
from repro.check.rules.r011_page_mutation import RULE as R011

#: Every registered rule, in id order.
ALL_RULES: List[Rule] = [
    R001, R002, R003, R004, R005, R006, R007, R008, R009, R010, R011,
]
