"""R002 — simulator packages never read the wall clock.

Simulated time is ``sim.now``; a ``time.time()`` or ``datetime.now()``
inside the engine, machines, or packet paths couples results to the host
machine's speed and breaks run-to-run identity.  The bench harness
(``repro/sweep/bench.py``) is the one module whose whole job is
wall-clock measurement, so it is allowlisted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.rules.base import (
    SIMULATION_PACKAGES,
    Rule,
    Violation,
    call_target,
    in_packages,
)

_SCOPE = SIMULATION_PACKAGES + ("repro/sweep/",)
_ALLOWLIST = frozenset({"repro/sweep/bench.py"})

_TIME_CALLS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_DATETIME_CALLS = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    rule_id = "R002"

    def applies_to(self, module: str) -> bool:
        if module in _ALLOWLIST:
            return False
        return in_packages(module, _SCOPE)

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            value, attr = call_target(node)
            if value == "time" and attr in _TIME_CALLS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"time.{attr}() reads the wall clock inside a simulator "
                    "package; use sim.now (simulated time) instead",
                )
            elif value in ("datetime", "date") and attr in _DATETIME_CALLS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{value}.{attr}() reads the wall clock inside a simulator "
                    "package; use sim.now (simulated time) instead",
                )


RULE = WallClockRule()
