"""Shared plumbing for ``repro check`` lint rules.

Each rule is a tiny class: a stable id, a scope predicate over the
``repro/...``-relative module path, and an AST check yielding
``(line, col, message)`` triples.  Rules are pure functions of the parsed
tree — suppression comments and path handling live in
:mod:`repro.check.lint`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Tuple

#: A single violation: (line, col, message).
Violation = Tuple[int, int, str]

#: The packages whose modules schedule events or emit packets — the scope
#: of the ordering/wall-clock rules (R002-R004).
SIMULATION_PACKAGES = (
    "repro/sim/",
    "repro/ring/",
    "repro/direct/",
    "repro/dataflow/",
)


class Rule:
    """Base class: subclasses set ``rule_id`` and override ``check``."""

    rule_id = "R000"

    def applies_to(self, module: str) -> bool:  # pragma: no cover - trivial
        return True

    def check(self, tree: ast.AST) -> Iterator[Violation]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.rule_id}>"


def in_packages(module: str, packages: Sequence[str]) -> bool:
    """True when the module path falls under any of ``packages``.

    Bare filenames (no package prefix — e.g. unit-test temp files) count
    as in-scope so rules remain directly testable on snippets.
    """
    if "/" not in module:
        return True
    return any(module.startswith(prefix) for prefix in packages)


def call_target(node: ast.Call) -> Tuple[str, str]:
    """``(value, attr)`` for ``value.attr(...)`` calls; ("", name) for bare."""
    func = node.func
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id, func.attr
        if isinstance(value, ast.Attribute):
            return value.attr, func.attr
        return "", func.attr
    if isinstance(func, ast.Name):
        return "", func.id
    return "", ""
