"""Byte-identity gates for runtime configuration axes.

The repo's oracle is the rendered experiment report: every experiment is
deterministic, so any *performance-only* configuration axis must produce
byte-identical renders.  This module runs each experiment once under the
default configuration and once under a variant axis, and reports any
experiment whose output changed:

* ``scheduler`` — the calendar-queue future-event list
  (``Simulator(scheduler="calendar")``) against the default tie-batched
  heap.  Must hold for **every** experiment: the event list only reorders
  heap traffic, never events.
* ``fusion`` — operator-loop fusion (:mod:`repro.sim.fusion`) against
  unfused chains.  Must also hold for every experiment: fused chains land
  on bit-identical timestamps and event counts, and the flag disables
  itself in the modes where the equivalence cannot hold (armed fault
  plans, serving horizons) — so E13/E14/E15 pass by construction.
* ``tracing`` — an armed :class:`repro.obs.spans.SpanCollector` against
  no collector.  Span hooks observe existing state transitions only —
  they schedule no events and draw no randomness — so an armed collector
  must be invisible in every report, including the serving experiments
  whose reports carry ``events_processed``.

Exposed through ``repro check --scheduler-identity`` /
``--fusion-identity`` / ``--tracing-identity`` and exercised (on a
subset) by the test suite.

Configurations are the experiments' quick grids — small enough for CI,
large enough to cross every protocol path (joins, broadcasts, failover,
admission).
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CheckError

#: experiment name -> (module, quick kwargs).  Names match ``repro run``.
QUICK_CONFIGS: Dict[str, Tuple[str, Dict]] = {
    "figure_3_1": (
        "repro.experiments.figure_3_1",
        dict(processors=(2, 4), scale=0.05, selectivity=0.3),
    ),
    "section_3_3": ("repro.experiments.section_3_3", {}),
    "figure_4_2": (
        "repro.experiments.figure_4_2",
        dict(ips=(2, 4), scale=0.05, selectivity=0.3, controllers=12),
    ),
    "packets": ("repro.experiments.packets_demo", {}),
    "dataflow": ("repro.experiments.dataflow_machine", dict(processors=(2, 8), scale=0.05)),
    "ring_sizing": (
        "repro.experiments.ring_sizing_exp",
        dict(ips=(2, 4), scale=0.05, selectivity=0.3),
    ),
    "tuple_granularity": (
        "repro.experiments.granularity_tuple",
        dict(processors=(3,), scale=0.05, selectivity=0.3),
    ),
    "ring_vs_direct": (
        "repro.experiments.ring_vs_direct",
        dict(ips=(3,), scale=0.05, selectivity=0.3, controllers=12),
    ),
    "project": ("repro.experiments.project_operator", dict(processors=(1, 4), rows=4000)),
    "fault_tolerance": (
        "repro.experiments.fault_tolerance",
        dict(processors=6, kill_counts=(0, 2), scale=0.05),
    ),
    "chaos": (
        "repro.experiments.chaos_sweep",
        dict(machines=("ring", "direct"), rates=(0.0, 0.05), scale=0.02, processors=6),
    ),
    "serving": (
        "repro.experiments.serving",
        dict(machines=("ring",), rates=(20.0, 60.0), duration_ms=1500.0, scale=0.05),
    ),
    "latency_decomposition": (
        "repro.experiments.latency_decomposition",
        dict(machines=("ring",), rates=(20.0, 60.0), duration_ms=1500.0, scale=0.05),
    ),
}

AXES = ("scheduler", "fusion", "tracing")


def render_experiment(name: str) -> str:
    """One experiment's rendered report under its quick configuration."""
    try:
        module_name, kwargs = QUICK_CONFIGS[name]
    except KeyError:
        raise CheckError(
            f"no identity configuration for experiment {name!r} "
            f"(known: {', '.join(sorted(QUICK_CONFIGS))})"
        ) from None
    module = importlib.import_module(module_name)
    result = module.run(**dict(kwargs))
    return str(result.render())


@contextmanager
def _axis_context(axis: str) -> Iterator[None]:
    """The ambient context that switches one axis on."""
    if axis == "scheduler":
        from repro.sim.engine import scheduling

        with scheduling("calendar"):
            yield
    elif axis == "fusion":
        from repro.sim.fusion import fusing

        with fusing(True):
            yield
    elif axis == "tracing":
        from repro.obs.spans import collecting

        with collecting():
            yield
    else:
        raise CheckError(f"unknown identity axis {axis!r} (choose from {AXES})")


def identity_mismatches(
    axis: str, experiments: Optional[Sequence[str]] = None
) -> List[str]:
    """Run the identity gate for one axis; returns mismatch descriptions.

    Each experiment runs twice — default configuration, then under the
    axis — and the rendered reports are compared byte for byte.  An empty
    list means the axis is output-invisible, which is the contract.
    """
    names = list(experiments) if experiments else list(QUICK_CONFIGS)
    mismatches: List[str] = []
    for name in names:
        baseline = render_experiment(name)
        with _axis_context(axis):
            variant = render_experiment(name)
        if baseline != variant:
            first_diff = next(
                (
                    i
                    for i, (a, b) in enumerate(
                        zip(baseline.splitlines(), variant.splitlines())
                    )
                    if a != b
                ),
                min(len(baseline.splitlines()), len(variant.splitlines())),
            )
            mismatches.append(
                f"{name}: {axis} output diverges from baseline "
                f"(first differing line {first_diff + 1})"
            )
    return mismatches
