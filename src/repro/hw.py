"""Era-accurate hardware timing constants used by the machine simulators.

Every constant is either stated in the paper (Boral & DeWitt, TR #369,
Section 3.2 and 4.1) or derived from the device literature the paper cites.
All times are in **milliseconds**, all sizes in **bytes**, and all rates in
**bytes per millisecond** unless a name says otherwise.

The paper's Figure 4.2 assumptions, quoted:

* 16K byte operands for instruction packets
* PDP LSI-11s as IPs (can read a 16K byte page in 33 ms)
* The data cache is constructed from Intel 2314 CCD chips
* Two IBM 3330 disk drives for mass storage of relations
* A cross-bar switch with broadcast capabilities connects IPs to the cache

Ring sizing, quoted: with 25 ns shift registers (AM25LS164/299) the DLCN
ring achieves 40 Mbps, "sufficient for up to 50 instruction processors";
ECL shift registers reach 1 Gbps; fiber optics support 400 Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass

KB = 1024
MB = 1024 * 1024

# ---------------------------------------------------------------------------
# Instruction processors: PDP LSI-11 (paper, Section 4.1)
# ---------------------------------------------------------------------------

#: Operand page size the paper assumes for the ring machine (16K bytes).
RING_PAGE_BYTES = 16 * KB

#: Time for an LSI-11 to read one 16K-byte page (paper: 33 ms).
LSI11_PAGE_READ_MS = 33.0

#: Memory scan rate implied by the 16K/33ms figure, bytes per millisecond.
LSI11_SCAN_RATE = RING_PAGE_BYTES / LSI11_PAGE_READ_MS

#: Approximate LSI-11 instruction time (~4 us per instruction, DEC manuals).
LSI11_INSTRUCTION_MS = 4e-3

#: Modeled CPU cost to evaluate one predicate against one tuple.  An
#: interpreted comparison on an LSI-11 runs a few dozen instructions.
LSI11_TUPLE_COMPARE_MS = 40 * LSI11_INSTRUCTION_MS

#: Per-tuple cost of a restrict's predicate evaluation (field extraction,
#: comparison, conditional move of the tuple to the output buffer) —
#: interpreted against the packet's "Tuple Length & Format" descriptor.
LSI11_RESTRICT_TUPLE_MS = 0.05

#: Per-pair cost of the nested-loops join inner loop: a hand-coded compare
#: of two join-attribute fields plus loop control (~6 instructions on an
#: LSI-11/23 at ~2 us each).  This constant sets the CPU:IO balance of the
#: simulated IPs; with it, a 50-IP configuration averages tens of Mbps of
#: interconnect traffic on the benchmark — the regime of Figure 4.2.
LSI11_JOIN_PAIR_MS = 0.012

#: Per-tuple cost of hashing for duplicate elimination (project operator).
LSI11_HASH_TUPLE_MS = 0.08

# ---------------------------------------------------------------------------
# Mass storage: IBM 3330 disk drive (paper, Section 4.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DiskModel:
    """Timing model of a moving-head disk drive.

    The service time for a transfer of ``n`` bytes is
    ``avg_seek_ms + avg_rotation_ms + n / transfer_rate``.
    """

    name: str
    avg_seek_ms: float
    avg_rotation_ms: float
    #: Sustained transfer rate in bytes per millisecond.
    transfer_rate: float
    capacity_bytes: int

    def access_time_ms(self, nbytes: int, sequential: bool = False) -> float:
        """Service time to transfer ``nbytes`` in one request.

        ``sequential`` skips the seek (the arm is already on-cylinder),
        modeling bulk relation scans laid out contiguously.
        """
        positioning = self.avg_rotation_ms
        if not sequential:
            positioning += self.avg_seek_ms
        return positioning + nbytes / self.transfer_rate


#: IBM 3330: 30 ms average seek, 16.7 ms full rotation (8.35 ms average
#: latency), 806 KB/s transfer, 100 MB per spindle.
IBM_3330 = DiskModel(
    name="IBM 3330",
    avg_seek_ms=30.0,
    avg_rotation_ms=8.35,
    transfer_rate=806 * KB / 1000.0,
    capacity_bytes=100 * MB,
)

#: The paper's configuration uses two 3330 drives.
NUM_MASS_STORAGE_DRIVES = 2

# ---------------------------------------------------------------------------
# Disk cache: Intel 2314 CCD chips (paper, Section 4.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CcdCacheModel:
    """Timing model of a block-oriented CCD (charge-coupled device) cache.

    CCD memories are serially-accessed shift-register stores: a block access
    pays an average loop-rotation latency then streams at the shift rate.
    """

    name: str
    avg_latency_ms: float
    #: Streaming rate in bytes per millisecond.
    transfer_rate: float

    def access_time_ms(self, nbytes: int) -> float:
        """Service time to transfer ``nbytes`` through one cache port."""
        return self.avg_latency_ms + nbytes / self.transfer_rate


#: Intel 2314-class CCD: ~0.1 ms average access into the serial loop and a
#: multi-megabyte/second streaming rate through each port of the multiport
#: cache.  We model 2 MB/s per port.
INTEL_2314_CCD = CcdCacheModel(
    name="Intel 2314 CCD",
    avg_latency_ms=0.1,
    transfer_rate=2 * MB / 1000.0,
)

#: Default disk-cache capacity for the simulated machines.  DIRECT's CCD
#: cache was a fraction of the database size, forcing real replacement
#: traffic on the 5.5 MB benchmark database.
DEFAULT_CACHE_BYTES = 2 * MB

# ---------------------------------------------------------------------------
# Rings (paper, Section 4.1): Distributed Loop Computer Network
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RingModel:
    """A DLCN shift-register-insertion ring.

    ``bit_rate_mbps`` is the raw loop rate; message service time is
    serialization at that rate plus a fixed per-message insertion delay.
    """

    name: str
    bit_rate_mbps: float
    insertion_delay_ms: float = 0.01

    @property
    def bytes_per_ms(self) -> float:
        """Loop throughput in bytes per millisecond."""
        return self.bit_rate_mbps * 1e6 / 8.0 / 1000.0

    def transfer_time_ms(self, nbytes: int) -> float:
        """Time to serialize one ``nbytes`` message onto the loop."""
        return self.insertion_delay_ms + nbytes / self.bytes_per_ms


#: Inner (control) ring: "a bandwidth of 1-2 Mbps should be sufficient".
INNER_RING = RingModel(name="inner control ring", bit_rate_mbps=2.0)

#: Outer (data) ring built from 25 ns TTL shift registers: 40 Mbps.
OUTER_RING_TTL = RingModel(name="outer ring (AM25LS164/299)", bit_rate_mbps=40.0)

#: Outer ring built from ECL shift registers (1 bit/ns): 1000 Mbps.
OUTER_RING_ECL = RingModel(name="outer ring (ECL)", bit_rate_mbps=1000.0)

#: Outer ring built from fiber optics: 400 Mbps (paper cites [17]).
OUTER_RING_FIBER = RingModel(name="outer ring (fiber optic)", bit_rate_mbps=400.0)

#: Number of IPs the paper says the 40 Mbps ring supports.
TTL_RING_MAX_IPS = 50

# ---------------------------------------------------------------------------
# DIRECT simulator defaults (paper, Section 3.2)
# ---------------------------------------------------------------------------

#: Page size used in the Section 3.3 analysis examples (1,000 bytes).
ANALYSIS_PAGE_BYTES = 1000

#: Tuple size used in the Section 3.3 analysis examples (100 bytes).
ANALYSIS_TUPLE_BYTES = 100

#: Memory cells per processor in the Figure 3.1 experiment.
MEMORY_CELLS_PER_PROCESSOR = 2

#: Combined size of the benchmark database (Section 3.2): 5.5 megabytes.
BENCHMARK_DB_BYTES = int(5.5 * MB)

#: Number of relations in the benchmark database.
BENCHMARK_NUM_RELATIONS = 15
