"""Latency capture and the byte-stable SLO report.

Percentiles use the nearest-rank definition (ceil(p/100 * n), 1-indexed)
— no interpolation, so a percentile is always a latency that actually
happened, and the report is reproducible to the byte across platforms.

Nothing here reads a wall clock (determinism linter rule R002): every
timestamp comes from the simulated clock, and the report is a pure
function of the run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    ``p`` is in (0, 100].  Empty input returns 0.0 (a serving window with
    no completions has no tail to report).
    """
    if not sorted_values:
        return 0.0
    if not 0.0 < p <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


class LatencyRecorder:
    """Accumulates per-query latencies and summarizes them."""

    def __init__(self) -> None:
        self._values: List[float] = []

    def record(self, latency_ms: float) -> None:
        """One completed query's offered-to-completion latency."""
        if latency_ms < 0:
            raise ValueError(f"negative latency {latency_ms}")
        self._values.append(latency_ms)

    @property
    def count(self) -> int:
        return len(self._values)

    def summary(self) -> Dict[str, float]:
        """p50/p90/p99/p999, mean, and max — all rounded for byte stability."""
        values = sorted(self._values)
        mean = sum(values) / len(values) if values else 0.0
        return {
            "count": len(values),
            "max_ms": _stable(values[-1] if values else 0.0),
            "mean_ms": _stable(mean),
            "p50_ms": _stable(percentile(values, 50.0)),
            "p90_ms": _stable(percentile(values, 90.0)),
            "p99_ms": _stable(percentile(values, 99.0)),
            "p999_ms": _stable(percentile(values, 99.9)),
        }


def _stable(value: float) -> float:
    """Round to 6 decimals: enough resolution for ms-scale latencies,
    and the JSON rendering stops depending on float-repr edge cases."""
    return round(value, 6)


def build_report(
    config: Dict[str, object],
    duration_ms: float,
    elapsed_ms: float,
    latency: LatencyRecorder,
    admission: Dict[str, object],
    completed: int,
    utilization: Optional[float],
    events_processed: int,
) -> Dict[str, object]:
    """Assemble the serve run's SLO report (schema ``repro-serve/v1``).

    Offered rate is measured over the arrival window ``duration_ms``;
    achieved rate over the full ``elapsed_ms`` (which includes the drain
    after the window closes).  Key order is irrelevant — serialize with
    ``sort_keys=True`` — but all floats are pre-rounded so two runs of
    the same seed produce byte-identical JSON.
    """
    duration_s = duration_ms / 1000.0 if duration_ms > 0 else 0.0
    elapsed_s = elapsed_ms / 1000.0 if elapsed_ms > 0 else 0.0
    return {
        "schema": "repro-serve/v1",
        "config": config,
        "elapsed_ms": _stable(elapsed_ms),
        "offered_qps": _stable(
            admission["arrived"] / duration_s if duration_s else 0.0
        ),
        "achieved_qps": _stable(completed / elapsed_s if elapsed_s else 0.0),
        "completed": completed,
        "latency": latency.summary(),
        "admission": admission,
        "utilization": _stable(utilization) if utilization is not None else None,
        "events_processed": events_processed,
    }
