"""Admission control for the serving loop.

Bounded in-flight queries with a bounded wait queue and shed-on-overflow:

* up to ``max_inflight`` queries run concurrently;
* the next ``queue_limit`` arrivals wait (FIFO, or shortest-job-first on
  the caller-supplied priority);
* everything beyond that is shed immediately — in an open-loop system an
  unbounded queue under overload grows without limit and every latency
  number becomes a measurement of the queue, not the machine.

The queue is a binary heap on ``(priority, seq)``; FIFO mode uses the
arrival sequence number as the priority, so both policies share one
deterministic code path (ties broken by arrival order, never by hash).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional, Tuple

from repro.errors import WorkloadError

ADMIT = "admit"
QUEUE = "queue"
SHED = "shed"

_POLICIES = ("fifo", "sjf")


class AdmissionQueue:
    """Bounded-concurrency admission with FIFO/SJF queueing and shedding."""

    def __init__(self, max_inflight: int, queue_limit: int, policy: str = "fifo") -> None:
        if max_inflight < 1:
            raise WorkloadError(f"max_inflight must be >= 1, got {max_inflight}")
        if queue_limit < 0:
            raise WorkloadError(f"queue_limit must be >= 0, got {queue_limit}")
        if policy not in _POLICIES:
            raise WorkloadError(f"unknown admission policy {policy!r}; use {_POLICIES}")
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.policy = policy
        self.inflight = 0
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = itertools.count()
        # Counters for the SLO report.
        self.arrived = 0
        self.admitted = 0  # straight to execution
        self.queued = 0  # waited first (admitted later via complete())
        self.shed = 0
        self.peak_queue = 0
        self.peak_inflight = 0

    def offer(self, item: Any, priority: float = 0.0) -> str:
        """Present one arrival; returns ``ADMIT``, ``QUEUE``, or ``SHED``.

        On ``ADMIT`` the caller must start the item now (the in-flight
        slot is taken).  On ``QUEUE`` the item is held until a
        :meth:`complete` call hands it back.  On ``SHED`` it is dropped.
        """
        self.arrived += 1
        if self.inflight < self.max_inflight:
            self.inflight += 1
            self.peak_inflight = max(self.peak_inflight, self.inflight)
            self.admitted += 1
            return ADMIT
        if len(self._heap) < self.queue_limit:
            seq = next(self._seq)
            key = priority if self.policy == "sjf" else float(seq)
            heapq.heappush(self._heap, (key, seq, item))
            self.peak_queue = max(self.peak_queue, len(self._heap))
            self.queued += 1
            return QUEUE
        self.shed += 1
        return SHED

    def complete(self) -> Optional[Any]:
        """One in-flight query finished.

        Returns the next queued item — which the caller must start
        immediately, as its slot transfers without ever being freed — or
        ``None``, in which case the slot is released.
        """
        if self.inflight <= 0:
            raise WorkloadError("complete() without a matching admitted query")
        if self._heap:
            _, _, item = heapq.heappop(self._heap)
            return item
        self.inflight -= 1
        return None

    @property
    def depth(self) -> int:
        """Arrivals currently waiting."""
        return len(self._heap)

    def snapshot(self) -> dict:
        """Counter snapshot for the SLO report (stable key order)."""
        return {
            "admitted_immediately": self.admitted,
            "arrived": self.arrived,
            "peak_inflight": self.peak_inflight,
            "peak_queue": self.peak_queue,
            "policy": self.policy,
            "queued": self.queued,
            "shed": self.shed,
        }
