"""Per-session query generation with zipf-skewed relation popularity.

A serving run simulates many user sessions issuing short ad-hoc queries
against the 15-relation benchmark database.  Relation choice is
Zipf-skewed by size rank (the biggest relations are also the hottest,
which is the stressful case for the shared cache), and the shape mix
leans read-heavy and simple — mostly selections, some joins — unlike the
batch benchmark's deep join chains.

Every query tree gets a unique name (``s00042q7``: session 42, its 8th
query) so lock tables, latency maps, and metrics never collide.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.query.builder import NodeBuilder, scan
from repro.query.cost import CostModel
from repro.query.tree import QueryTree
from repro.relational.predicate import attr
from repro.workload.generator import BenchmarkDatabase
from repro.workload.updates import write_query
from repro.workload.zipf import ZipfGenerator

#: Default shape mix: (restrict-only, one join, two-join chain).
DEFAULT_MIX: Tuple[float, float, float] = (0.6, 0.3, 0.1)


class SessionWorkload:
    """Draws session-attributed query trees from a benchmark database."""

    def __init__(
        self,
        db: BenchmarkDatabase,
        selectivity: float = 0.1,
        zipf_s: float = 0.8,
        mix: Sequence[float] = DEFAULT_MIX,
        users: int = 1000,
        write_mix: float = 0.0,
    ) -> None:
        if not 0.0 < selectivity <= 1.0:
            raise WorkloadError(f"selectivity must be in (0, 1], got {selectivity}")
        if len(mix) != 3 or any(w < 0 for w in mix) or sum(mix) <= 0:
            raise WorkloadError(f"mix must be 3 nonnegative weights, got {mix!r}")
        if users < 1:
            raise WorkloadError(f"need at least one user session, got {users}")
        if not 0.0 <= write_mix <= 1.0:
            raise WorkloadError(f"write_mix must be in [0, 1], got {write_mix}")
        self.db = db
        self.selectivity = selectivity
        self.users = users
        self.write_mix = write_mix
        self._relations = list(db.relation_names)  # size order: rank 1 = biggest
        self._rel_zipf = ZipfGenerator(len(self._relations), zipf_s)
        self._user_zipf = ZipfGenerator(users, zipf_s)
        total = float(sum(mix))
        self._mix_cdf = []
        acc = 0.0
        for w in mix:
            acc += w / total
            self._mix_cdf.append(acc)
        self._cost = CostModel(db.catalog, page_bytes=db.page_bytes)
        self._per_session_seq = [0] * (users + 1)
        self._queries_built = 0

    # ------------------------------------------------------------------ draws

    def _draw_relation(self, rng: random.Random, exclude: List[str]) -> str:
        """One zipf-ranked relation name, avoiding ``exclude`` (self-joins
        of the same base relation would double-lock it)."""
        for _ in range(32):
            name = self._relations[self._rel_zipf.draw(rng) - 1]
            if name not in exclude:
                return name
        # Pathological skew: fall back to the first non-excluded relation.
        for name in self._relations:
            if name not in exclude:
                return name
        raise WorkloadError("no relation available outside the exclusion set")

    def _restricted(self, relation: str, rng: random.Random) -> NodeBuilder:
        rows = self.db.catalog.get(relation).cardinality
        # Jitter the cutoff ±50% around the configured selectivity so
        # repeated queries are not byte-identical work items.
        sel = self.selectivity * (0.5 + rng.random())
        cutoff = max(1, int(round(min(1.0, sel) * rows)))
        return scan(relation).restrict(attr("key") < cutoff)

    def next_query(self, rng: random.Random) -> Tuple[QueryTree, int, float]:
        """Draw ``(tree, session_id, cost_hint_pages)`` for one arrival.

        The cost hint is the estimated root output size in pages — the
        shortest-job-first admission policy orders on it.
        """
        session = self._user_zipf.draw(rng)
        self._per_session_seq[session] += 1
        self._queries_built += 1
        name = f"s{session:05d}q{self._per_session_seq[session]}"

        # Write draws only consume randomness when the write mix is
        # armed, so a ``write_mix=0`` session replays the exact RNG
        # sequence (and therefore the exact bytes) of a build without
        # this feature.
        if self.write_mix > 0.0 and rng.random() < self.write_mix:
            tree = write_query(
                self.db.catalog, self._relations, rng, self._rel_zipf, name
            )
            tree.validate(self.db.catalog)
            estimate = self._cost.estimate_root(tree)
            return tree, session, float(estimate.pages)

        u = rng.random()
        if u <= self._mix_cdf[0]:
            joins = 0
        elif u <= self._mix_cdf[1]:
            joins = 1
        else:
            joins = 2
        chosen: List[str] = []
        for _ in range(joins + 1):
            chosen.append(self._draw_relation(rng, chosen))

        current = self._restricted(chosen[0], rng)
        for rel in chosen[1:]:
            current = current.equijoin(self._restricted(rel, rng), "b", "b")
        tree = current.tree(name)
        tree.validate(self.db.catalog)
        estimate = self._cost.estimate_root(tree)
        return tree, session, float(estimate.pages)

    @property
    def queries_built(self) -> int:
        """Total trees drawn so far."""
        return self._queries_built
