"""The serving loop: arrivals -> admission -> a running machine -> SLO.

``serve(config)`` builds the benchmark database and one machine (ring,
direct, or dataflow), schedules a seeded arrival process over the run's
horizon, and bridges arrivals into the machine through admission
control.  Latency is measured from *offered* time (the arrival instant,
including any time spent in the admission queue) to root completion —
the open-loop convention that keeps overload visible in the tail.

After the horizon closes no new work arrives; the machine drains the
admission queue and every in-flight query, the event heap empties, and
the run reports.  The whole pipeline is a pure function of the config:
same seed, byte-identical report.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.errors import MachineError, WorkloadError
from repro.serve.admission import ADMIT, QUEUE, AdmissionQueue
from repro.serve.arrivals import make_arrivals
from repro.serve.sessions import DEFAULT_MIX, SessionWorkload
from repro.serve.slo import LatencyRecorder, build_report
from repro.sim.random import RandomStreams
from repro.workload.generator import generate_benchmark_database

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.sim.engine import Simulator

MACHINES = ("ring", "direct", "dataflow")
LOOPS = ("open", "closed")


@dataclass(frozen=True)
class ServeConfig:
    """Everything one serving run depends on (and nothing else)."""

    machine: str = "ring"
    arrivals: str = "poisson"
    rate_qps: float = 50.0
    duration_ms: float = 10_000.0
    seed: int = 1979
    scale: float = 0.05
    b_domain: int = 100
    selectivity: float = 0.1
    page_bytes: int = 2048
    processors: int = 8
    zipf_s: float = 0.8
    mix: Tuple[float, float, float] = DEFAULT_MIX
    loop: str = "open"
    users: int = 1000
    think_ms: float = 1000.0
    max_inflight: int = 8
    queue_limit: int = 64
    policy: str = "fifo"
    #: Fraction of arrivals that are write transactions (ring only: the
    #: MC lock manager serializes conflicting writers; DIRECT and
    #: dataflow have no lock manager, so concurrent writes are unsafe).
    write_mix: float = 0.0
    # Bursty / diurnal shape knobs (ignored by poisson).
    burst_on_ms: float = 200.0
    burst_off_ms: float = 800.0
    burst_off_level: float = 0.2
    diurnal_period_ms: float = 10_000.0
    diurnal_depth: float = 0.8
    max_events: int = 5_000_000

    def validate(self) -> None:
        if self.machine not in MACHINES:
            raise WorkloadError(f"unknown machine {self.machine!r}; use {MACHINES}")
        if self.loop not in LOOPS:
            raise WorkloadError(f"unknown loop mode {self.loop!r}; use {LOOPS}")
        if self.duration_ms <= 0:
            raise WorkloadError(f"duration_ms must be positive, got {self.duration_ms}")
        if self.think_ms <= 0:
            raise WorkloadError(f"think_ms must be positive, got {self.think_ms}")
        if not 0.0 <= self.write_mix <= 1.0:
            raise WorkloadError(
                f"write_mix must be in [0, 1], got {self.write_mix}"
            )
        if self.write_mix > 0.0 and self.machine != "ring":
            raise WorkloadError(
                "write_mix needs the ring machine's lock manager; "
                f"{self.machine!r} cannot serialize concurrent writers"
            )


def _build_machine(config: ServeConfig, catalog: Any) -> Any:
    if config.machine == "ring":
        from repro.ring.machine import RingMachine

        machine = RingMachine(
            catalog,
            processors=config.processors,
            page_bytes=config.page_bytes,
            max_events=config.max_events,
            # Serving runs against an `until` horizon, which can cut a
            # charge chain mid-flight — a fused chain would then collapse
            # an observable boundary, so fusion stays off here.
            fuse_ops=False,
        )
        machine.publish_per_query_metrics = False
        return machine
    if config.machine == "direct":
        from repro.direct.machine import DirectMachine

        machine = DirectMachine(
            catalog,
            processors=config.processors,
            page_bytes=config.page_bytes,
            max_events=config.max_events,
            fuse_ops=False,  # same horizon argument as the ring machine above
        )
        machine.publish_per_query_metrics = False
        return machine
    from repro.dataflow.machine import DataflowMachine

    return DataflowMachine(
        catalog,
        processors=config.processors,
        page_bytes=config.page_bytes,
        max_events=config.max_events,
    )


def _machine_utilization(report: object) -> Optional[float]:
    for field in ("ip_utilization", "processor_utilization"):
        value = getattr(report, field, None)
        if value is not None:
            return value
    return None


def serve(config: ServeConfig) -> Dict[str, object]:
    """Run one serving session and return its SLO report dict."""
    config.validate()
    db = generate_benchmark_database(
        scale=config.scale,
        seed=config.seed,
        page_bytes=config.page_bytes,
        b_domain=config.b_domain,
    )
    machine = _build_machine(config, db.catalog)
    sim = machine.sim
    streams = RandomStreams(config.seed)
    workload_rng = streams.stream("serve.workload")
    workload = SessionWorkload(
        db,
        selectivity=config.selectivity,
        zipf_s=config.zipf_s,
        mix=config.mix,
        users=config.users,
        write_mix=config.write_mix,
    )
    tm = None
    if config.write_mix > 0.0:
        from repro.recovery.store import StableStore
        from repro.recovery.txn import TransactionManager

        tm = TransactionManager(StableStore(), config.page_bytes)
        machine.attach_recovery(tm)

    latency = LatencyRecorder()
    offered_at: Dict[str, float] = {}
    completed = {"n": 0}

    if config.loop == "open":
        admission = AdmissionQueue(
            config.max_inflight, config.queue_limit, config.policy
        )
        _wire_open_loop(config, machine, workload, workload_rng, streams,
                        admission, offered_at, latency, completed)
    else:
        # Closed loop IS the admission bound: at most ``users`` queries
        # exist at once, so the queue degenerates to a counter.
        admission = AdmissionQueue(max(1, config.users), 0, "fifo")
        _wire_closed_loop(config, machine, workload, workload_rng, streams,
                          admission, offered_at, latency, completed)

    report = machine.run_service()

    config_echo = asdict(config)
    config_echo["mix"] = list(config.mix)
    slo = build_report(
        config=config_echo,
        duration_ms=config.duration_ms,
        elapsed_ms=sim.now,
        latency=latency,
        admission=admission.snapshot(),
        completed=completed["n"],
        utilization=_machine_utilization(report),
        events_processed=sim.events_processed,
    )
    if tm is not None:
        slo["writes"] = _write_report(machine, tm)
    _publish_serve_metrics(sim, slo)
    return slo


def _write_report(machine: Any, tm: Any) -> Dict[str, object]:
    """Abort/retry summary for a write-mix serving run.

    A refused lock upgrade aborts the attempt and re-queues the query
    with X demanded up front, so each committed write carries a retry
    count; the percentiles below are nearest-rank over those counts.
    """
    from repro.serve.slo import percentile

    write_aborts: Dict[str, int] = getattr(machine, "write_aborts", {})
    retries = sorted(write_aborts.get(name, 0) for name in tm.committed_names)
    attempts = tm.commits + tm.aborts
    return {
        "commits": tm.commits,
        "aborts": tm.aborts,
        "abort_rate": round(tm.aborts / attempts, 6) if attempts else 0.0,
        "retries_p50": percentile(retries, 50.0),
        "retries_p99": percentile(retries, 99.0),
        "retries_max": retries[-1] if retries else 0,
    }


# ---------------------------------------------------------------------- loops


def _wire_open_loop(
    config: ServeConfig,
    machine: Any,
    workload: SessionWorkload,
    workload_rng: random.Random,
    streams: RandomStreams,
    admission: AdmissionQueue,
    offered_at: Dict[str, float],
    latency: LatencyRecorder,
    completed: Dict[str, int],
) -> None:
    """Pre-schedule the open-loop arrival times; bridge through admission."""
    sim = machine.sim
    spans = sim.spans  # observation only: no events, no machine state
    process = make_arrivals(
        config.arrivals,
        config.rate_qps,
        on_ms=config.burst_on_ms,
        off_ms=config.burst_off_ms,
        off_level=config.burst_off_level,
        period_ms=config.diurnal_period_ms,
        depth=config.diurnal_depth,
    )
    arrival_times = process.times(config.duration_ms, streams.stream("serve.arrivals"))

    def arrive() -> None:
        tree, _session, cost_pages = workload.next_query(workload_rng)
        offered_at[tree.name] = sim.now
        if spans is not None:
            # Latency counts from the offer instant, so the span record
            # opens here — the machine's submit-time begin is idempotent.
            spans.query_begin(tree.name, sim.now)
        decision = admission.offer(tree, priority=cost_pages)
        if decision == ADMIT:
            machine.submit(tree)
        elif decision != QUEUE:
            offered_at.pop(tree.name, None)  # shed: never measured
            if spans is not None:
                spans.query_cancel(tree.name)
        if spans is not None:
            _sample_admission(spans, sim.now, admission)

    for at_ms in arrival_times:
        sim.schedule_at(at_ms, arrive, label="serve.arrival")

    def query_done(name: str, at_ms: float, _rows: int) -> None:
        _record_completion(name, at_ms, offered_at, latency, completed)
        next_tree = admission.complete()
        if next_tree is not None:
            if spans is not None:
                # The admission wait is known exactly at dequeue time:
                # offered -> now.  Explicitly named so explain-latency can
                # split admission queueing from in-machine queueing.
                spans.record(
                    "queueing",
                    next_tree.name,
                    offered_at[next_tree.name],
                    sim.now,
                    name="admission",
                )
            machine.submit(next_tree)
        if spans is not None:
            _sample_admission(spans, sim.now, admission)
            spans.count("completed", sim.now, float(completed["n"]))

    machine.on_query_complete = query_done


def _wire_closed_loop(
    config: ServeConfig,
    machine: Any,
    workload: SessionWorkload,
    workload_rng: random.Random,
    streams: RandomStreams,
    admission: AdmissionQueue,
    offered_at: Dict[str, float],
    latency: LatencyRecorder,
    completed: Dict[str, int],
) -> None:
    """``users`` sessions, each issuing one query at a time with think time."""
    sim = machine.sim
    spans = sim.spans  # observation only: no events, no machine state
    think_rng = streams.stream("serve.think")
    query_user: Dict[str, int] = {}

    def issue(user: int) -> None:
        if sim.now >= config.duration_ms:
            return  # horizon closed; this user's session ends
        tree, _session, cost_pages = workload.next_query(workload_rng)
        offered_at[tree.name] = sim.now
        query_user[tree.name] = user
        if spans is not None:
            spans.query_begin(tree.name, sim.now)
        decision = admission.offer(tree, priority=cost_pages)
        if decision != ADMIT:  # queue_limit=0 and max_inflight=users
            raise MachineError(
                f"closed loop overflowed its own user bound ({decision})"
            )
        machine.submit(tree)
        if spans is not None:
            _sample_admission(spans, sim.now, admission)

    def query_done(name: str, at_ms: float, _rows: int) -> None:
        _record_completion(name, at_ms, offered_at, latency, completed)
        admission.complete()
        if spans is not None:
            _sample_admission(spans, sim.now, admission)
            spans.count("completed", sim.now, float(completed["n"]))
        user = query_user.pop(name)
        sim.schedule(
            think_rng.expovariate(1.0 / config.think_ms),
            lambda: issue(user),
            label="serve.think",
        )

    machine.on_query_complete = query_done
    for user in range(config.users):
        # Staggered session starts so users do not arrive in lockstep.
        sim.schedule(
            think_rng.expovariate(1.0 / config.think_ms),
            lambda u=user: issue(u),
            label="serve.think",
        )


def _sample_admission(spans: Any, now: float, admission: AdmissionQueue) -> None:
    """Fold the admission gauges/counters into the time-series windows.

    Called at every admission transition (offer, dequeue, completion),
    which is exactly the set of instants where these step functions can
    change value.
    """
    spans.sample("inflight", now, float(admission.inflight))
    spans.sample("queue_depth", now, float(admission.depth))
    spans.count("offered", now, float(admission.arrived))
    spans.count("shed", now, float(admission.shed))


def _record_completion(
    name: str,
    at_ms: float,
    offered_at: Dict[str, float],
    latency: LatencyRecorder,
    completed: Dict[str, int],
) -> None:
    offered = offered_at.pop(name, None)
    if offered is None:
        raise MachineError(f"completion for unknown query {name!r}")
    latency.record(at_ms - offered)
    completed["n"] += 1


def _publish_serve_metrics(sim: "Simulator", slo: Dict[str, Any]) -> None:
    """Mirror the headline SLO numbers into the metrics registry."""
    metrics = sim.metrics
    if not metrics.enabled:
        return
    rid = sim.run_id
    metrics.set_gauge("serve.offered_qps", slo["offered_qps"], run=rid)
    metrics.set_gauge("serve.achieved_qps", slo["achieved_qps"], run=rid)
    metrics.set_gauge("serve.completed", slo["completed"], run=rid)
    lat = slo["latency"]
    for key in ("p50_ms", "p99_ms", "p999_ms", "mean_ms"):
        metrics.set_gauge(f"serve.latency_{key}", lat[key], run=rid)
    adm = slo["admission"]
    for key in ("arrived", "shed", "peak_queue", "peak_inflight"):
        metrics.set_gauge(f"serve.{key}", adm[key], run=rid)
