"""Seeded open-loop arrival processes.

Each process turns ``(horizon_ms, rng)`` into a strictly ordered list of
arrival times in ``[0, horizon_ms)``.  Times are fixed before the run
starts (open loop): a machine that falls behind does not slow the
arrivals down, so queueing delay shows up in the measured latency
instead of being silently absorbed (coordinated omission).

All draws come from the caller-supplied :class:`random.Random`, so a
given ``(process, rate, horizon, seed)`` always yields the same schedule.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.errors import WorkloadError


class ArrivalProcess:
    """Base class: a named, seed-deterministic arrival-time generator."""

    name = "abstract"

    def times(self, horizon_ms: float, rng: random.Random) -> List[float]:
        """Arrival times in ``[0, horizon_ms)``, strictly increasing."""
        raise NotImplementedError


def _check_rate(rate_qps: float) -> float:
    if rate_qps <= 0:
        raise WorkloadError(f"arrival rate must be positive, got {rate_qps}")
    return rate_qps / 1000.0  # per-ms rate


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_qps`` queries/second."""

    name = "poisson"

    def __init__(self, rate_qps: float) -> None:
        self.rate_per_ms = _check_rate(rate_qps)
        self.rate_qps = rate_qps

    def times(self, horizon_ms: float, rng: random.Random) -> List[float]:
        out: List[float] = []
        t = rng.expovariate(self.rate_per_ms)
        while t < horizon_ms:
            out.append(t)
            t += rng.expovariate(self.rate_per_ms)
        return out


class BurstyArrivals(ArrivalProcess):
    """MMPP-style on/off arrivals: bursts at a high rate, lulls at a low one.

    The process alternates exponentially distributed ON phases (mean
    ``on_ms``) and OFF phases (mean ``off_ms``).  The OFF rate is
    ``off_level * rate_qps``; the ON rate is solved so the long-run mean
    rate is exactly ``rate_qps``, which keeps bursty and Poisson runs
    comparable at the same nominal offered load.
    """

    name = "bursty"

    def __init__(
        self,
        rate_qps: float,
        on_ms: float = 200.0,
        off_ms: float = 800.0,
        off_level: float = 0.2,
    ) -> None:
        if on_ms <= 0 or off_ms <= 0:
            raise WorkloadError("burst phase means must be positive")
        if not 0.0 <= off_level < 1.0:
            raise WorkloadError(f"off_level must be in [0, 1), got {off_level}")
        mean_per_ms = _check_rate(rate_qps)
        self.rate_qps = rate_qps
        self.on_ms = on_ms
        self.off_ms = off_ms
        self.off_rate = mean_per_ms * off_level
        # duty-cycle solve: mean = (on*r_on + off*r_off) / (on + off)
        self.on_rate = (mean_per_ms * (on_ms + off_ms) - self.off_rate * off_ms) / on_ms
        if self.on_rate <= 0:
            raise WorkloadError("bursty parameters yield a non-positive burst rate")

    def times(self, horizon_ms: float, rng: random.Random) -> List[float]:
        out: List[float] = []
        t = 0.0
        on = True  # start inside a burst so short horizons still see load
        while t < horizon_ms:
            phase = rng.expovariate(1.0 / (self.on_ms if on else self.off_ms))
            end = min(t + phase, horizon_ms)
            rate = self.on_rate if on else self.off_rate
            if rate > 0:
                at = t + rng.expovariate(rate)
                while at < end:
                    out.append(at)
                    at += rng.expovariate(rate)
            t = end
            on = not on
        return out


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate profile (a compressed day) via Poisson thinning.

    Instantaneous rate is ``rate_qps * (1 + depth * sin(2*pi*t/period))``
    — mean ``rate_qps``, peak ``rate_qps * (1 + depth)``.  Candidates are
    drawn at the peak rate and accepted with probability rate(t)/peak
    (Lewis-Shedler thinning), which stays exact for any profile.
    """

    name = "diurnal"

    def __init__(self, rate_qps: float, period_ms: float = 10_000.0, depth: float = 0.8) -> None:
        if period_ms <= 0:
            raise WorkloadError(f"period_ms must be positive, got {period_ms}")
        if not 0.0 <= depth < 1.0:
            raise WorkloadError(f"depth must be in [0, 1), got {depth}")
        self.mean_per_ms = _check_rate(rate_qps)
        self.rate_qps = rate_qps
        self.period_ms = period_ms
        self.depth = depth

    def _rate_at(self, t: float) -> float:
        return self.mean_per_ms * (
            1.0 + self.depth * math.sin(2.0 * math.pi * t / self.period_ms)
        )

    def times(self, horizon_ms: float, rng: random.Random) -> List[float]:
        peak = self.mean_per_ms * (1.0 + self.depth)
        out: List[float] = []
        t = rng.expovariate(peak)
        while t < horizon_ms:
            if rng.random() <= self._rate_at(t) / peak:
                out.append(t)
            t += rng.expovariate(peak)
        return out


def make_arrivals(
    kind: str,
    rate_qps: float,
    on_ms: float = 200.0,
    off_ms: float = 800.0,
    off_level: float = 0.2,
    period_ms: float = 10_000.0,
    depth: float = 0.8,
) -> ArrivalProcess:
    """Build an arrival process by name (``poisson``/``bursty``/``diurnal``)."""
    if kind == "poisson":
        return PoissonArrivals(rate_qps)
    if kind == "bursty":
        return BurstyArrivals(rate_qps, on_ms=on_ms, off_ms=off_ms, off_level=off_level)
    if kind == "diurnal":
        return DiurnalArrivals(rate_qps, period_ms=period_ms, depth=depth)
    raise WorkloadError(
        f"unknown arrival process {kind!r}; use poisson, bursty, or diurnal"
    )
