"""Continuous multi-user serving mode (ROADMAP item 1).

Everything the paper's experiments measure is a closed batch of ten
queries; this package measures the steady state instead — an open-loop
arrival process (Poisson, bursty, or diurnal) feeds a running machine
with zipf-skewed queries from thousands of simulated user sessions,
under admission control, and the run reports p50/p99/p999 latency and a
saturation point (offered rate x achieved throughput).

Open-loop means arrival times are fixed in advance and do not slow down
when the machine falls behind — the standard way to avoid
coordinated-omission bias when measuring tail latency.

Same seed, same config → byte-identical SLO report.
"""

from repro.serve.admission import ADMIT, QUEUE, SHED, AdmissionQueue
from repro.serve.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.serve.service import ServeConfig, serve
from repro.serve.sessions import SessionWorkload
from repro.serve.slo import LatencyRecorder, percentile

__all__ = [
    "ADMIT",
    "QUEUE",
    "SHED",
    "AdmissionQueue",
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "make_arrivals",
    "ServeConfig",
    "serve",
    "SessionWorkload",
    "LatencyRecorder",
    "percentile",
]
