"""Exception hierarchy for the dataflow-dbm reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or a row does not match its schema."""


class PageError(ReproError):
    """A page operation failed (overflow, bad slot, corrupt bytes)."""


class CatalogError(ReproError):
    """A catalog lookup or registration failed."""


class PredicateError(ReproError):
    """A predicate or scalar expression is malformed or ill-typed."""


class QueryTreeError(ReproError):
    """A query tree is structurally invalid."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class PacketError(ReproError):
    """A ring packet failed to encode or decode."""


class MachineError(ReproError):
    """A machine simulator (DIRECT or ring) reached an invalid state."""


class ConcurrencyError(ReproError):
    """A concurrency-control invariant was violated."""


class SanitizerError(ReproError):
    """The runtime simulation sanitizer detected an invariant violation.

    Raised only when a simulator runs with ``sanitize=True`` (or inside
    :func:`repro.check.sanitizing`); the message carries a trace-context
    breadcrumb of the most recently fired events.
    """


class CheckError(ReproError):
    """A correctness-tooling gate was misconfigured or cannot run.

    Raised by :mod:`repro.check.identity` for unknown experiments or
    axes — distinct from the gate *failing*, which is reported as data.
    """


class WorkloadError(ReproError):
    """The benchmark workload could not be generated as specified."""


class FaultError(ReproError):
    """Fault injection was misconfigured or recovery machinery gave up.

    Raised with an injection-site breadcrumb (which fault class, which
    component) so a chaos run that cannot recover points at the site
    rather than at a generic machine invariant.
    """


class RetryExhaustedError(FaultError):
    """A bounded-retry recovery path ran out of attempts.

    Ring retransmission and disk read retry raise this once a single
    packet or page transfer has failed ``max_retries + 1`` times in a
    row; the message names the site and the attempt count.
    """


class CrashError(FaultError):
    """A planned whole-machine crash fault fired mid-run.

    Raised out of the event loop when a ``machine_crash`` fault strikes;
    the crash harness catches it at the ``run_service`` boundary, drops
    volatile state, and hands the stable store to restart recovery.
    """


class RecoveryError(ReproError):
    """The write-ahead log or restart protocol hit an impossible state.

    Distinct from *detected* damage (a torn page, a corrupt log tail),
    which recovery repairs silently: this error means the log itself
    violates its own invariants (non-monotone LSNs, a redo image missing
    for a page known to be damaged) and restart cannot proceed.
    """
