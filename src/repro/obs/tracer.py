"""Structured event tracing in Chrome trace-event format.

A :class:`Tracer` collects *spans* (``ph: "X"`` complete events), *instants*
(``ph: "i"``) and *counter samples* (``ph: "C"``) from the simulators and
serializes them as Chrome trace-event JSON — the format read by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev).

Conventions:

* timestamps and durations arrive in **simulated milliseconds** and are
  written in microseconds (``ts``/``dur``), as the format requires;
* each span names a ``track`` (a device, processor, ring, or the query
  lane); tracks map to trace *thread ids* with ``thread_name`` metadata so
  viewers show one swim-lane per simulated component;
* a disabled tracer (``enabled=False``) records nothing — every recording
  method returns immediately, so instrumentation hooks cost one attribute
  check when tracing is off;
* a *streaming* tracer (``stream_path=...``) flushes events to disk in
  batches of ``flush_every`` instead of buffering the whole trace, so a
  long traced ``repro serve`` run stays memory-bounded; call
  :meth:`close` to finalize the file (thread-name metadata is appended at
  the end — Chrome/Perfetto do not care about event order).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


class Tracer:
    """Collects trace events; renders/writes Chrome trace-event JSON."""

    def __init__(
        self,
        enabled: bool = True,
        stream_path: Optional[str] = None,
        flush_every: int = 10_000,
    ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.enabled = enabled
        self.stream_path = stream_path
        self.flush_every = flush_every
        self._events: List[dict] = []
        self._tracks: Dict[str, int] = {}
        self._stream_handle = None
        self._streamed = 0
        self._closed = False

    # -- recording ------------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str,
        start_ms: float,
        dur_ms: float,
        track: str,
        args: Optional[dict] = None,
    ) -> None:
        """One complete (``ph: "X"``) event covering ``[start, start+dur)``."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start_ms * 1000.0,
            "dur": dur_ms * 1000.0,
            "pid": 1,
            "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._events.append(event)
        self._maybe_flush()

    def instant(
        self,
        name: str,
        cat: str,
        ts_ms: float,
        track: str,
        args: Optional[dict] = None,
    ) -> None:
        """One instant (``ph: "i"``) event at ``ts_ms``."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": ts_ms * 1000.0,
            "pid": 1,
            "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._events.append(event)
        self._maybe_flush()

    def counter(self, name: str, ts_ms: float, values: Dict[str, float]) -> None:
        """One counter (``ph: "C"``) sample; Perfetto plots it as a graph."""
        if not self.enabled:
            return
        self._events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": ts_ms * 1000.0,
                "pid": 1,
                "tid": 0,
                "args": dict(values),
            }
        )
        self._maybe_flush()

    def flow(
        self,
        name: str,
        cat: str,
        ts_ms: float,
        track: str,
        flow_id: int,
        phase: str = "s",
    ) -> None:
        """One flow event (``ph: "s"`` start / ``"f"`` finish).

        Flow arrows with a shared ``flow_id`` link slices across tracks —
        used to tie packet-hop spans back to their query span.
        """
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": phase,
            "ts": ts_ms * 1000.0,
            "pid": 1,
            "tid": self._tid(track),
            "id": flow_id,
        }
        if phase == "f":
            event["bp"] = "e"  # bind to the enclosing slice
        self._events.append(event)
        self._maybe_flush()

    def _tid(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks) + 1
            self._tracks[track] = tid
        return tid

    # -- streaming ------------------------------------------------------------

    def _maybe_flush(self) -> None:
        if self.stream_path is not None and len(self._events) >= self.flush_every:
            self._flush_events()

    def _flush_events(self) -> None:
        """Append the buffered events to the stream file and drop them."""
        if self._closed:
            raise ValueError("streaming tracer already closed")
        if self._stream_handle is None:
            self._stream_handle = open(self.stream_path, "w", encoding="utf-8")
            self._stream_handle.write('{"displayTimeUnit": "ms", "traceEvents": [')
        handle = self._stream_handle
        for event in self._events:
            if self._streamed:
                handle.write(", ")
            handle.write(json.dumps(event, sort_keys=True))
            self._streamed += 1
        self._events.clear()

    def close(self) -> int:
        """Finalize the stream file; returns total events written.

        Flushes any buffered events, appends the thread-name metadata, and
        closes the JSON document.  Only meaningful for a streaming tracer;
        a buffering tracer raises (use :meth:`write`).
        """
        if self.stream_path is None:
            raise ValueError("close() is for streaming tracers; use write()")
        if self._closed:
            return self._streamed
        self._flush_events()
        handle = self._stream_handle
        for event in self._metadata_events():
            if self._streamed:
                handle.write(", ")
            handle.write(json.dumps(event, sort_keys=True))
            self._streamed += 1
        handle.write("]}")
        handle.close()
        self._stream_handle = None
        self._closed = True
        return self._streamed

    # -- output ---------------------------------------------------------------

    @property
    def event_count(self) -> int:
        """Events recorded so far (excluding thread-name metadata)."""
        return len(self._events) + self._streamed

    def _metadata_events(self) -> List[dict]:
        return [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in sorted(self._tracks.items(), key=lambda kv: kv[1])
        ]

    def chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event JSON object."""
        if self._streamed:
            raise ValueError(
                "events were already streamed to disk; the in-memory trace "
                "is incomplete (finalize with close() instead)"
            )
        return {
            "traceEvents": self._metadata_events() + list(self._events),
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> None:
        """Serialize the trace to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, sort_keys=True)

    def clear(self) -> None:
        """Drop all recorded events (track ids are kept stable)."""
        self._events.clear()

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"Tracer({state}, {len(self._events)} events, {len(self._tracks)} tracks)"


#: The shared disabled tracer: the ambient default when no one is tracing.
NULL_TRACER = Tracer(enabled=False)
