"""Structured event tracing in Chrome trace-event format.

A :class:`Tracer` collects *spans* (``ph: "X"`` complete events), *instants*
(``ph: "i"``) and *counter samples* (``ph: "C"``) from the simulators and
serializes them as Chrome trace-event JSON — the format read by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev).

Conventions:

* timestamps and durations arrive in **simulated milliseconds** and are
  written in microseconds (``ts``/``dur``), as the format requires;
* each span names a ``track`` (a device, processor, ring, or the query
  lane); tracks map to trace *thread ids* with ``thread_name`` metadata so
  viewers show one swim-lane per simulated component;
* a disabled tracer (``enabled=False``) records nothing — every recording
  method returns immediately, so instrumentation hooks cost one attribute
  check when tracing is off.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


class Tracer:
    """Collects trace events; renders/writes Chrome trace-event JSON."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._events: List[dict] = []
        self._tracks: Dict[str, int] = {}

    # -- recording ------------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str,
        start_ms: float,
        dur_ms: float,
        track: str,
        args: Optional[dict] = None,
    ) -> None:
        """One complete (``ph: "X"``) event covering ``[start, start+dur)``."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start_ms * 1000.0,
            "dur": dur_ms * 1000.0,
            "pid": 1,
            "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(
        self,
        name: str,
        cat: str,
        ts_ms: float,
        track: str,
        args: Optional[dict] = None,
    ) -> None:
        """One instant (``ph: "i"``) event at ``ts_ms``."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": ts_ms * 1000.0,
            "pid": 1,
            "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(self, name: str, ts_ms: float, values: Dict[str, float]) -> None:
        """One counter (``ph: "C"``) sample; Perfetto plots it as a graph."""
        if not self.enabled:
            return
        self._events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": ts_ms * 1000.0,
                "pid": 1,
                "tid": 0,
                "args": dict(values),
            }
        )

    def _tid(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks) + 1
            self._tracks[track] = tid
        return tid

    # -- output ---------------------------------------------------------------

    @property
    def event_count(self) -> int:
        """Events recorded so far (excluding thread-name metadata)."""
        return len(self._events)

    def chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event JSON object."""
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in sorted(self._tracks.items(), key=lambda kv: kv[1])
        ]
        return {
            "traceEvents": metadata + list(self._events),
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> None:
        """Serialize the trace to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)

    def clear(self) -> None:
        """Drop all recorded events (track ids are kept stable)."""
        self._events.clear()

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"Tracer({state}, {len(self._events)} events, {len(self._tracks)} tracks)"


#: The shared disabled tracer: the ambient default when no one is tracing.
NULL_TRACER = Tracer(enabled=False)
