"""A namespaced metrics registry with labeled dimensions.

Instruments are the :mod:`repro.sim.monitor` primitives — :class:`Counter`,
:class:`Tally`, :class:`TimeSeries` — plus plain *gauges* (last-write-wins
summary values).  Every instrument is identified by a name and a set of
``label=value`` dimensions, rendered Prometheus-style::

    ring.bytes{ring=outer-ring}
    resource.queue_depth{resource=disk0}
    query.elapsed_ms{query=Q3}

The metric names the simulators emit are a stable interface, documented in
README.md ("Observability"); experiments and the ``repro metrics`` CLI read
them back instead of hand-rolling counters.

A disabled registry hands out shared throwaway instruments and records
nothing, so instrumentation hooks cost one attribute check when metrics
are off.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.monitor import Counter, Tally, TimeSeries


def metric_key(name: str, labels: Optional[dict] = None) -> str:
    """Canonical ``name{k=v,...}`` key (labels sorted; bare name if none)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str):
    """Invert :func:`metric_key`: ``"name{k=v}"`` -> ``(name, {k: v})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels = {}
    for part in inner.split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class MetricsRegistry:
    """Namespaced counters, tallies, time series, and gauges."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._tallies: Dict[str, Tally] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._gauges: Dict[str, float] = {}
        # Shared sinks handed out while disabled: recorded values are
        # simply discarded with the instance.
        self._null_counter = Counter("null")
        self._null_tally = Tally("null")
        self._null_series = TimeSeries("null")

    # -- instrument access -----------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """The monotone counter for ``name`` + ``labels`` (created on first use)."""
        if not self.enabled:
            return self._null_counter
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(key)
        return instrument

    def tally(self, name: str, **labels) -> Tally:
        """The sample tally for ``name`` + ``labels``."""
        if not self.enabled:
            return self._null_tally
        key = metric_key(name, labels)
        instrument = self._tallies.get(key)
        if instrument is None:
            instrument = self._tallies[key] = Tally(key)
        return instrument

    def series(self, name: str, **labels) -> TimeSeries:
        """The time series for ``name`` + ``labels``."""
        if not self.enabled:
            return self._null_series
        key = metric_key(name, labels)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = TimeSeries(key)
        return instrument

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Record a summary value (last write wins)."""
        if not self.enabled:
            return
        self._gauges[metric_key(name, labels)] = value

    # -- reading ---------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """A counter's or gauge's current value (0.0 when never recorded)."""
        key = metric_key(name, labels)
        if key in self._counters:
            return self._counters[key].value
        return self._gauges.get(key, 0.0)

    def report(self, end_time_ms: Optional[float] = None) -> dict:
        """A machine-readable snapshot of every instrument.

        Time series are summarized (count, last, time-weighted mean to
        ``end_time_ms``) rather than dumped sample-by-sample.
        """
        series = {}
        for key, ts in sorted(self._series.items()):
            end = end_time_ms if end_time_ms is not None else (
                ts.samples[-1][0] if ts.samples else 0.0
            )
            series[key] = {
                "samples": len(ts),
                "last": ts.last,
                "time_weighted_mean": ts.time_weighted_mean(end),
            }
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": dict(sorted(self._gauges.items())),
            "tallies": {
                k: {
                    "count": t.count,
                    "mean": t.mean,
                    "min": t.minimum if t.count else 0.0,
                    "max": t.maximum if t.count else 0.0,
                    "stddev": t.stddev,
                }
                for k, t in sorted(self._tallies.items())
            },
            "series": series,
        }

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"MetricsRegistry({state}, {len(self._counters)} counters, "
            f"{len(self._tallies)} tallies, {len(self._series)} series, "
            f"{len(self._gauges)} gauges)"
        )


#: The shared disabled registry: the ambient default when no one measures.
NULL_REGISTRY = MetricsRegistry(enabled=False)
