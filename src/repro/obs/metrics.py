"""A namespaced metrics registry with labeled dimensions.

Instruments are the :mod:`repro.sim.monitor` primitives — :class:`Counter`,
:class:`Tally`, :class:`TimeSeries` — plus plain *gauges* (last-write-wins
summary values).  Every instrument is identified by a name and a set of
``label=value`` dimensions, rendered Prometheus-style::

    ring.bytes{ring=outer-ring}
    resource.queue_depth{resource=disk0}
    query.elapsed_ms{query=Q3}

The metric names the simulators emit are a stable interface, documented in
README.md ("Observability"); experiments and the ``repro metrics`` CLI read
them back instead of hand-rolling counters.

A disabled registry hands out shared throwaway instruments and records
nothing, so instrumentation hooks cost one attribute check when metrics
are off.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.monitor import Counter, Tally, TimeSeries


def metric_key(name: str, labels: Optional[dict] = None) -> str:
    """Canonical ``name{k=v,...}`` key (labels sorted; bare name if none)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`metric_key`: ``"name{k=v}"`` -> ``(name, {k: v})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: Dict[str, str] = {}
    for part in inner.split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class MetricsRegistry:
    """Namespaced counters, tallies, time series, and gauges."""

    def __init__(self, enabled: bool = True, capture_tally_samples: bool = False) -> None:
        self.enabled = enabled
        #: Sweep worker registries keep raw tally samples so the parent's
        #: merge can replay them in order (bit-identical to serial).
        self._capture_tally = capture_tally_samples
        self._counters: Dict[str, Counter] = {}
        self._tallies: Dict[str, Tally] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._gauges: Dict[str, float] = {}
        # Shared sinks handed out while disabled: recorded values are
        # simply discarded with the instance.
        self._null_counter = Counter("null")
        self._null_tally = Tally("null")
        self._null_series = TimeSeries("null")

    # -- instrument access -----------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The monotone counter for ``name`` + ``labels`` (created on first use)."""
        if not self.enabled:
            return self._null_counter
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(key)
        return instrument

    def tally(self, name: str, **labels: object) -> Tally:
        """The sample tally for ``name`` + ``labels``."""
        if not self.enabled:
            return self._null_tally
        key = metric_key(name, labels)
        instrument = self._tallies.get(key)
        if instrument is None:
            instrument = self._tallies[key] = Tally(
                key, samples=[] if self._capture_tally else None
            )
        return instrument

    def series(self, name: str, **labels: object) -> TimeSeries:
        """The time series for ``name`` + ``labels``."""
        if not self.enabled:
            return self._null_series
        key = metric_key(name, labels)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = TimeSeries(key)
        return instrument

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Record a summary value (last write wins)."""
        if not self.enabled:
            return
        self._gauges[metric_key(name, labels)] = value

    # -- cross-process transfer --------------------------------------------------

    def dump(self) -> dict:
        """A full-fidelity, picklable snapshot of every instrument.

        Unlike :meth:`report` (which summarizes for humans and JSON), a
        dump preserves raw tally state and raw time-series samples so a
        :meth:`merge` into another registry is lossless.  This is the
        transport format between sweep worker processes and the parent.

        Keys are sorted: a dump's byte rendering depends only on what was
        recorded, never on instrument creation order.
        """
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": dict(sorted(self._gauges.items())),
            "tallies": {
                k: (t.count, t._mean, t._m2, t.minimum, t.maximum, t.samples)
                for k, t in sorted(self._tallies.items())
            },
            "series": {k: list(ts.samples) for k, ts in sorted(self._series.items())},
        }

    def merge(self, dump: dict, run_offset: int = 0) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        ``run_offset`` is added to every numeric ``run`` label before the
        merge, so a sweep worker's locally numbered runs (1, 2, ...) land
        under exactly the ids the serial execution order would have
        assigned.  Counters add, gauges last-write-win, series extend
        sample-by-sample (still monotonicity-checked).  Tallies whose dump
        carries raw samples (``capture_tally_samples`` registries) are
        *replayed* observation-by-observation — bit-identical to having
        recorded serially; tallies without samples fall back to the
        pairwise Welford combine.
        """
        if not self.enabled:
            return

        def rekey(key: str) -> str:
            if run_offset == 0:
                return key
            name, labels = parse_metric_key(key)
            run = labels.get("run")
            if run is None or not run.lstrip("-").isdigit():
                return key
            labels["run"] = str(int(run) + run_offset)
            return metric_key(name, labels)

        for key, value in dump["counters"].items():
            name, labels = parse_metric_key(rekey(key))
            self.counter(name, **labels).add(value)
        for key, value in dump["gauges"].items():
            name, labels = parse_metric_key(rekey(key))
            self.set_gauge(name, value, **labels)
        for key, state in dump["tallies"].items():
            name, labels = parse_metric_key(rekey(key))
            tally = self.tally(name, **labels)
            samples = state[5] if len(state) > 5 else None
            if samples is not None:
                for sample in samples:
                    tally.observe(sample)
            else:
                tally.combine(*state[:5])
        for key, samples in dump["series"].items():
            name, labels = parse_metric_key(rekey(key))
            series = self.series(name, **labels)
            for time, value in samples:
                series.record(time, value)

    # -- reading ---------------------------------------------------------------

    def value(self, name: str, **labels: object) -> float:
        """A counter's or gauge's current value (0.0 when never recorded)."""
        key = metric_key(name, labels)
        if key in self._counters:
            return self._counters[key].value
        return self._gauges.get(key, 0.0)

    def report(self, end_time_ms: Optional[float] = None) -> dict:
        """A machine-readable snapshot of every instrument.

        Time series are summarized (count, last, time-weighted mean to
        ``end_time_ms``) rather than dumped sample-by-sample.
        """
        series = {}
        for key, ts in sorted(self._series.items()):
            end = end_time_ms if end_time_ms is not None else (
                ts.samples[-1][0] if ts.samples else 0.0
            )
            series[key] = {
                "samples": len(ts),
                "last": ts.last,
                "time_weighted_mean": ts.time_weighted_mean(end),
            }
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": dict(sorted(self._gauges.items())),
            "tallies": {
                k: {
                    "count": t.count,
                    "mean": t.mean,
                    "min": t.minimum if t.count else 0.0,
                    "max": t.maximum if t.count else 0.0,
                    "stddev": t.stddev,
                }
                for k, t in sorted(self._tallies.items())
            },
            "series": series,
        }

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"MetricsRegistry({state}, {len(self._counters)} counters, "
            f"{len(self._tallies)} tallies, {len(self._series)} series, "
            f"{len(self._gauges)} gauges)"
        )


def _csv_field(value: object) -> str:
    """RFC-4180 field quoting (metric keys carry commas in their labels)."""
    text = str(value)
    if any(ch in text for ch in (",", '"', "\n")):
        return '"' + text.replace('"', '""') + '"'
    return text


def report_csv(report: dict) -> str:
    """Flatten a :meth:`MetricsRegistry.report` dict into CSV text.

    One row per scalar — ``section,key,field,value`` — in sorted key
    order, so the rendering is byte-stable for a given set of recorded
    values.  Counters and gauges use the field name ``value``; tallies
    and series emit one row per summary statistic.
    """
    lines = ["section,key,field,value"]
    for section in ("counters", "gauges"):
        for key in sorted(report.get(section, {})):
            value = report[section][key]
            lines.append(f"{section},{_csv_field(key)},value,{_csv_field(value)}")
    for section in ("tallies", "series"):
        for key in sorted(report.get(section, {})):
            fields = report[section][key]
            for field in sorted(fields):
                lines.append(
                    f"{section},{_csv_field(key)},{field},{_csv_field(fields[field])}"
                )
    return "\n".join(lines) + "\n"


#: The shared disabled registry: the ambient default when no one measures.
NULL_REGISTRY = MetricsRegistry(enabled=False)
