"""Windowed time-series on simulated time (repro-tsdb/v1).

Three fold primitives turn instrumentation callbacks into fixed-window
series without retaining raw samples:

* :class:`StepFold` — a step function (in-flight, queue depth) integrated
  into per-window time-weighted means;
* :class:`CumulativeFold` — a monotone counter (shed, completions) reduced
  to its last value per window, from which per-window deltas derive rates;
* :class:`BusyFold` — busy intervals (resource service time) integrated
  into per-window busy-time, normalised by capacity into utilization.

All windowing uses integer window indices (``int(t // window)``) — never
float equality on timestamps — and every emitted value passes through
``round(x, 6)`` so reports are byte-stable across platforms.

:func:`build_tsdb` assembles a collector's folds into the repro-tsdb/v1
document; :func:`validate_tsdb` and :func:`validate_chrome_trace` are the
hand-rolled schema checks used by tests and the CI trace-smoke job (the
container has no jsonschema dependency).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

TSDB_SCHEMA = "repro-tsdb/v1"


def _stable(value: float) -> float:
    return round(value, 6)


class StepFold:
    """Time-weighted integral of a step function, folded per window."""

    def __init__(self, window_ms: float, initial: float = 0.0) -> None:
        self.window_ms = window_ms
        self._acc: Dict[int, float] = {}
        self._last_t = 0.0
        self._last_v = initial

    def _integrate(self, t0: float, t1: float, value: float) -> None:
        if t1 <= t0 or value == 0.0:
            return
        w = self.window_ms
        i0 = int(t0 // w)
        i1 = int(t1 // w)
        for i in range(i0, i1 + 1):
            lo = max(t0, i * w)
            hi = min(t1, (i + 1) * w)
            if hi > lo:
                self._acc[i] = self._acc.get(i, 0.0) + (hi - lo) * value

    def sample(self, t: float, value: float) -> None:
        self._integrate(self._last_t, t, self._last_v)
        self._last_t = max(self._last_t, t)
        self._last_v = value

    def values(self, end_ms: float, n_windows: int) -> List[float]:
        """Per-window time-weighted means over ``[0, end_ms)``."""
        self._integrate(self._last_t, end_ms, self._last_v)
        self._last_t = max(self._last_t, end_ms)
        w = self.window_ms
        out: List[float] = []
        for i in range(n_windows):
            span = min(w, end_ms - i * w)
            if span <= 0:
                out.append(0.0)
            else:
                out.append(_stable(self._acc.get(i, 0.0) / span))
        return out


class CumulativeFold:
    """Last-value-per-window fold of a monotone cumulative counter."""

    def __init__(self, window_ms: float) -> None:
        self.window_ms = window_ms
        self._last_per_window: Dict[int, float] = {}

    def sample(self, t: float, value: float) -> None:
        self._last_per_window[int(t // self.window_ms)] = value

    def deltas(self, n_windows: int) -> List[float]:
        """Per-window increments (counter delta inside each window)."""
        out: List[float] = []
        carry = 0.0
        for i in range(n_windows):
            level = self._last_per_window.get(i, carry)
            out.append(_stable(level - carry))
            carry = level
        return out


class BusyFold:
    """Busy-time integral per window (for resource utilization)."""

    def __init__(self, window_ms: float) -> None:
        self.window_ms = window_ms
        self._acc: Dict[int, float] = {}

    def add(self, start: float, duration: float) -> None:
        if duration <= 0:
            return
        w = self.window_ms
        end = start + duration
        i0 = int(start // w)
        i1 = int(end // w)
        for i in range(i0, i1 + 1):
            lo = max(start, i * w)
            hi = min(end, (i + 1) * w)
            if hi > lo:
                self._acc[i] = self._acc.get(i, 0.0) + (hi - lo)

    def utilization(self, end_ms: float, n_windows: int, capacity: int) -> List[float]:
        w = self.window_ms
        cap = max(1, capacity)
        out: List[float] = []
        for i in range(n_windows):
            span = min(w, end_ms - i * w)
            if span <= 0:
                out.append(0.0)
            else:
                out.append(_stable(self._acc.get(i, 0.0) / (span * cap)))
        return out


def window_count(end_ms: float, window_ms: float) -> int:
    """Number of (possibly partial) windows covering ``[0, end_ms)``."""
    if end_ms <= 0:
        return 1
    return max(1, int(math.ceil(end_ms / window_ms)))


def build_tsdb(collector: Any, end_ms: float) -> Dict[str, Any]:
    """Assemble the repro-tsdb/v1 document from a SpanCollector's folds.

    Series keys are sorted so ``json.dumps(..., sort_keys=True)`` output is
    byte-stable; counter series named ``shed``/``completed`` are derived
    into ``shed_rate`` / ``throughput_qps`` (per-window deltas, the latter
    scaled to queries/second).
    """
    w = collector.window_ms
    n = window_count(end_ms, w)
    series: Dict[str, Dict[str, Any]] = {}
    for name, fold in collector.step_series().items():
        series[name] = {"mode": "mean", "values": fold.values(end_ms, n)}
    scale_qps = 1000.0 / w
    for name, cfold in collector.cumulative_series().items():
        deltas = cfold.deltas(n)
        if name == "completed":
            series["throughput_qps"] = {
                "mode": "rate",
                "values": [_stable(d * scale_qps) for d in deltas],
            }
        elif name == "shed":
            series["shed_rate"] = {
                "mode": "rate",
                "values": [_stable(d * scale_qps) for d in deltas],
            }
        else:
            series[name] = {"mode": "delta", "values": deltas}
    capacities = collector.capacities()
    for name, bfold in collector.busy_series().items():
        series[f"utilization.{name}"] = {
            "mode": "utilization",
            "values": bfold.utilization(end_ms, n, capacities.get(name, 1)),
        }
    return {
        "schema": TSDB_SCHEMA,
        "window_ms": _stable(w),
        "windows": n,
        "duration_ms": _stable(end_ms),
        "series": {k: series[k] for k in sorted(series)},
    }


def spans_chrome_trace(collector: Any) -> Dict[str, Any]:
    """Chrome-trace view of a :class:`SpanCollector`'s completed queries.

    One slice per query on the ``queries`` track, one slice per recorded
    span on its component track (the span's name, falling back to its
    kind), and a flow-arrow pair per span linking the hop slice back to
    its query slice.  Flow ids derive from
    :func:`repro.ring.packets.query_flow_id` (offset by span index), so
    the rendering is stable across runs and machines.
    """
    from repro.obs.tracer import Tracer
    from repro.ring.packets import query_flow_id

    tracer = Tracer()
    for record in sorted(collector.completed, key=lambda r: (r.start, r.name)):
        if record.end is None:
            continue
        base = query_flow_id(record.name)
        tracer.span(
            record.name,
            "query",
            record.start,
            record.end - record.start,
            "queries",
            args={"rows": record.rows},
        )
        ordered = sorted(record.spans, key=lambda s: (s[2], s[3], s[0], s[1]))
        for index, (kind, name, start, end) in enumerate(ordered):
            track = name or kind
            tracer.span(f"{record.name}:{kind}", kind, start, end - start, track)
            flow_id = (base + index) & 0xFFFFFFFF
            tracer.flow(record.name, "span", start, "queries", flow_id, phase="s")
            tracer.flow(record.name, "span", start, track, flow_id, phase="f")
    return tracer.chrome_trace()


# ---------------------------------------------------------------- validators

_TSDB_MODES = ("mean", "rate", "delta", "utilization")


def validate_tsdb(doc: Dict[str, Any]) -> None:
    """Raise ValueError unless ``doc`` is a well-formed repro-tsdb/v1."""
    if not isinstance(doc, dict):
        raise ValueError("tsdb document must be an object")
    if doc.get("schema") != TSDB_SCHEMA:
        raise ValueError(f"schema must be {TSDB_SCHEMA!r}, got {doc.get('schema')!r}")
    for key in ("window_ms", "windows", "duration_ms", "series"):
        if key not in doc:
            raise ValueError(f"tsdb document missing {key!r}")
    windows = doc["windows"]
    if not isinstance(windows, int) or windows < 1:
        raise ValueError("windows must be a positive integer")
    if not isinstance(doc["series"], dict):
        raise ValueError("series must be an object")
    for name, entry in doc["series"].items():
        if not isinstance(entry, dict):
            raise ValueError(f"series {name!r} must be an object")
        if entry.get("mode") not in _TSDB_MODES:
            raise ValueError(f"series {name!r} has unknown mode {entry.get('mode')!r}")
        values = entry.get("values")
        if not isinstance(values, list) or len(values) != windows:
            raise ValueError(
                f"series {name!r} must carry exactly {windows} values"
            )
        for v in values:
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                raise ValueError(f"series {name!r} holds a non-numeric value")


_PHASE_REQUIRED = {
    "X": ("name", "cat", "ph", "ts", "dur", "pid", "tid"),
    "i": ("name", "ph", "ts", "pid", "tid"),
    "C": ("name", "ph", "ts", "pid", "args"),
    "M": ("name", "ph", "pid"),
    "s": ("name", "cat", "ph", "ts", "pid", "tid", "id"),
    "f": ("name", "cat", "ph", "ts", "pid", "tid", "id"),
}


def validate_chrome_trace(doc: Dict[str, Any]) -> None:
    """Raise ValueError unless ``doc`` is a valid Chrome trace object."""
    if not isinstance(doc, dict):
        raise ValueError("chrome trace must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace missing traceEvents array")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        phase = event.get("ph")
        required: Optional[tuple] = _PHASE_REQUIRED.get(phase)  # type: ignore[arg-type]
        if required is None:
            raise ValueError(f"traceEvents[{index}] has unknown phase {phase!r}")
        for key in required:
            if key not in event:
                raise ValueError(
                    f"traceEvents[{index}] (ph={phase}) missing {key!r}"
                )
