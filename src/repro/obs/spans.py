"""Causal span collection: per-query latency decomposition raw material.

A :class:`SpanCollector` records, on **simulated time**, the intervals a
query spends in each stage of a machine — IP/processor service, disk-cache
fetches, ring/network transit, retransmission backoff — plus explicit
admission-queue waits.  Every completed query yields a flat span record
(the "span tree" flattened onto the query's timeline); the critical-path
extractor in :mod:`repro.obs.critical_path` turns that into an exact
queueing / service / transit / disk / retransmission partition of the
query's end-to-end latency.

Binding follows the sanitizer/injector ambient pattern: ``collecting()``
installs a collector, ``Simulator.__init__`` snapshots it once, and
components pre-bind ``sim.spans`` so a disabled collector costs one
``is not None`` check per hook.  Armed collection must never perturb the
simulation: hooks only *observe* state transitions that already happen —
they schedule no events, draw no randomness, and mutate no machine state.
``repro check --tracing-identity`` enforces this byte-for-byte.

Time-series samples (in-flight, queue depth, shed, completions, resource
busy-time) are folded into fixed windows *incrementally* so memory stays
O(windows + completed queries), not O(samples).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.timeseries import BusyFold, CumulativeFold, StepFold

#: Span kinds, in critical-path precedence order (see ``critical_path``).
SPAN_KINDS = ("service", "disk", "transit", "retransmission", "queueing")

#: A recorded interval: ``(kind, name, start_ms, end_ms)``.
Span = Tuple[str, str, float, float]


class QueryRecord:
    """One query's lifetime and the spans observed inside it."""

    __slots__ = ("name", "start", "end", "rows", "spans")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.rows = 0
        self.spans: List[Span] = []

    @property
    def latency_ms(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start


class SpanCollector:
    """Collects per-query spans and windowed serving time-series.

    ``window_ms`` sizes the time-series fold windows.  The collector is
    "armed" by mere existence — components check ``sim.spans is not None``.
    """

    def __init__(self, window_ms: float = 100.0) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = float(window_ms)
        self._open: Dict[str, QueryRecord] = {}
        self.completed: List[QueryRecord] = []
        self.cancelled = 0
        self._step: Dict[str, StepFold] = {}
        self._cumulative: Dict[str, CumulativeFold] = {}
        self._busy: Dict[str, BusyFold] = {}
        self._capacity: Dict[str, int] = {}

    # ------------------------------------------------------------ query lifecycle

    def query_begin(self, name: str, t: float) -> None:
        """Open a query record at ``t``.  Idempotent: the serve layer opens
        at offer time; a later ``machine.submit`` begin is a no-op, so
        latency always counts from the earliest observed point."""
        if name not in self._open:
            self._open[name] = QueryRecord(name, t)

    def query_end(self, name: str, t: float, rows: int = 0) -> None:
        record = self._open.pop(name, None)
        if record is None:
            return
        record.end = t
        record.rows = rows
        self.completed.append(record)

    def query_cancel(self, name: str) -> None:
        """Drop an open record (e.g. the admission queue shed the query)."""
        if self._open.pop(name, None) is not None:
            self.cancelled += 1

    def record(
        self, kind: str, query: Optional[str], start: float, end: float, name: str = ""
    ) -> None:
        """Attach a completed interval to ``query``.  Spans for unknown or
        already-completed queries are dropped — late control traffic after
        finalization does not belong to any open timeline."""
        if query is None:
            return
        record = self._open.get(query)
        if record is not None and end > start:
            record.spans.append((kind, name, start, end))

    # ------------------------------------------------------------ time-series

    def sample(self, series: str, t: float, value: float) -> None:
        """Fold a step-function sample (e.g. in-flight count) at ``t``."""
        fold = self._step.get(series)
        if fold is None:
            fold = self._step[series] = StepFold(self.window_ms)
        fold.sample(t, value)

    def count(self, series: str, t: float, value: float) -> None:
        """Fold a monotone cumulative counter sample (e.g. total shed)."""
        fold = self._cumulative.get(series)
        if fold is None:
            fold = self._cumulative[series] = CumulativeFold(self.window_ms)
        fold.sample(t, value)

    def resource_busy(self, resource: str, start: float, duration: float) -> None:
        """Fold one busy interval of ``resource`` into its utilization."""
        if duration <= 0:
            return
        fold = self._busy.get(resource)
        if fold is None:
            fold = self._busy[resource] = BusyFold(self.window_ms)
        fold.add(start, duration)

    def register_capacity(self, resource: str, capacity: int) -> None:
        """Declare a resource's parallel capacity (for utilization)."""
        self._capacity[resource] = capacity

    # ------------------------------------------------------------ export

    def step_series(self) -> Dict[str, StepFold]:
        return self._step

    def cumulative_series(self) -> Dict[str, CumulativeFold]:
        return self._cumulative

    def busy_series(self) -> Dict[str, BusyFold]:
        return self._busy

    def capacities(self) -> Dict[str, int]:
        return self._capacity


# ---------------------------------------------------------------- ambient context

_ambient: Optional[SpanCollector] = None


def active_collector() -> Optional[SpanCollector]:
    """The ambient collector, or None when span collection is off."""
    return _ambient


@contextmanager
def collecting(
    collector: Optional[SpanCollector] = None,
) -> Iterator[SpanCollector]:
    """Arm span collection for simulators constructed inside the block."""
    global _ambient
    installed = collector if collector is not None else SpanCollector()
    previous = _ambient
    _ambient = installed
    try:
        yield installed
    finally:
        _ambient = previous
