"""Unified observability: metrics registry + structured tracing.

Both simulators (:mod:`repro.direct`, :mod:`repro.ring`) are instrumented
against this package.  Observability is carried by an :class:`ObsSession`
— a (tracer, metrics) pair — and the *ambient* session is what a freshly
constructed :class:`repro.sim.engine.Simulator` picks up.  The default
ambient session is disabled on both axes, so an uninstrumented run pays
one ``.enabled`` attribute check per hook and records nothing; behaviour
and results are bit-identical either way (hooks only observe, never
schedule).

Typical use::

    from repro import obs

    with obs.observe(trace=True, metrics=True) as session:
        report = run_ring_benchmark(catalog, queries)     # instrumented
    session.tracer.write("run.trace.json")                # Perfetto-loadable
    print(session.metrics.report(end_time_ms=report.elapsed_ms))
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    metric_key,
    parse_metric_key,
)
from repro.obs.spans import SpanCollector, active_collector, collecting
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "ObsSession",
    "SpanCollector",
    "Tracer",
    "active_collector",
    "ambient",
    "collecting",
    "install",
    "metric_key",
    "next_run_id",
    "observe",
    "parse_metric_key",
    "peek_run_id",
    "set_next_run_id",
]


@dataclass
class ObsSession:
    """One (tracer, metrics) pair the simulators record into."""

    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)
    metrics: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)

    @property
    def enabled(self) -> bool:
        """True when either axis is recording."""
        return self.tracer.enabled or self.metrics.enabled


#: The disabled default every simulator sees unless someone observes.
_DISABLED = ObsSession()
_ambient: ObsSession = _DISABLED

#: Monotone ids handed to instrumented Simulators.  A sweep experiment
#: builds many machines under one session; the id becomes the ``run``
#: label that keeps their time series and per-query gauges apart.  A
#: plain integer (not itertools.count) so the sweep runner can read and
#: re-seed the counter — parallel workers number their runs locally and
#: the merge relabels them to the ids serial execution would have used.
_next_run = 1


def next_run_id() -> int:
    """A fresh ``run`` label value for one instrumented simulator."""
    global _next_run
    rid = _next_run
    _next_run += 1
    return rid


def peek_run_id() -> int:
    """The id the next instrumented simulator would receive (no consume)."""
    return _next_run


def set_next_run_id(value: int) -> None:
    """Re-seed the run-id counter.

    The sweep runner uses this in two places: each worker resets to 1
    before executing a point (so per-point numbering is deterministic
    regardless of worker reuse), and the parent advances past all merged
    runs (so simulators built after a parallel sweep continue exactly
    where a serial sweep would have).
    """
    global _next_run
    _next_run = value


def ambient() -> ObsSession:
    """The session a newly built Simulator will record into."""
    return _ambient


def install(session: ObsSession) -> ObsSession:
    """Make ``session`` ambient; returns the one it replaced."""
    global _ambient
    previous = _ambient
    _ambient = session
    return previous


@contextmanager
def observe(
    trace: bool = True,
    metrics: bool = True,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[ObsSession]:
    """Install a fresh (or given) session as ambient for the block.

    Only simulators *constructed inside* the block pick the session up —
    a Simulator binds its session once, at construction.
    """
    session = ObsSession(
        tracer=tracer if tracer is not None else (Tracer() if trace else NULL_TRACER),
        metrics=registry
        if registry is not None
        else (MetricsRegistry() if metrics else NULL_REGISTRY),
    )
    previous = install(session)
    try:
        yield session
    finally:
        install(previous)
