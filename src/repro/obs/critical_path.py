"""Critical-path extraction: exact latency attribution per query.

Given a completed :class:`~repro.obs.spans.QueryRecord`, every instant of
the query's ``[start, end)`` timeline is charged to exactly one bucket:

* instants covered by a **service** span (IP/processor busy on this query)
  are service time, regardless of what else overlaps;
* otherwise **disk** (cache fetch in flight), then **transit** (on a ring
  or arbitration/distribution network), then **retransmission** (NAK or
  timeout backoff after a lossy-ring drop);
* everything else — explicit admission-queue waits and all uncovered
  residue (dispatch waits, resource queues, controller coordination) — is
  **queueing**.

Because the sweep partitions the timeline, the five buckets sum to the
end-to-end latency up to float addition error.  The sweep is an O(n log n)
boundary walk over the query's span endpoints with one active-count per
priority class, so attribution cost is linear-ish in spans observed.

:func:`explain` aggregates per-query attributions into the
``repro explain-latency`` report (repro-explain/v1): per-bucket
p50/p99/mean/total, the p99 query's own decomposition, and the top-k
slowest queries with their span paths.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import QueryRecord, SpanCollector

EXPLAIN_SCHEMA = "repro-explain/v1"

#: Attribution buckets; index order is coverage precedence (lower wins).
BUCKETS = ("service", "disk", "transit", "retransmission", "queueing")

_PRIORITY = {kind: index for index, kind in enumerate(BUCKETS)}
_QUEUEING = _PRIORITY["queueing"]


def _stable(value: float) -> float:
    return round(value, 6)


def _percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (matches ``repro.serve.slo.percentile``)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def attribute_query(record: QueryRecord) -> Dict[str, float]:
    """Partition ``record``'s latency into the five buckets (raw floats)."""
    buckets = {kind: 0.0 for kind in BUCKETS}
    if record.end is None or record.end <= record.start:
        return buckets
    qs, qe = record.start, record.end
    # Boundary events on the clipped spans: (position, delta, priority).
    events: List[Tuple[float, int, int]] = []
    for kind, _name, start, end in record.spans:
        lo = max(start, qs)
        hi = min(end, qe)
        if hi <= lo:
            continue
        priority = _PRIORITY.get(kind, _QUEUEING)
        events.append((lo, +1, priority))
        events.append((hi, -1, priority))
    events.sort(key=lambda e: e[0])
    active = [0] * len(BUCKETS)
    cursor = qs
    index = 0
    n = len(events)
    while index < n:
        position = events[index][0]
        if position > cursor:
            segment = position - cursor
            winner = _QUEUEING
            for priority in range(len(BUCKETS)):
                if active[priority] > 0:
                    winner = priority
                    break
            buckets[BUCKETS[winner]] += segment
            cursor = position
        # Apply every delta at this position before measuring onward.
        while index < n and events[index][0] <= cursor:
            _, delta, priority = events[index]
            active[priority] += delta
            index += 1
    if qe > cursor:
        segment = qe - cursor
        winner = _QUEUEING
        for priority in range(len(BUCKETS)):
            if active[priority] > 0:
                winner = priority
                break
        buckets[BUCKETS[winner]] += segment
    return buckets


def _span_path(record: QueryRecord, limit: int = 40) -> Dict[str, Any]:
    """A query's spans in start order, truncated for report compactness."""
    ordered = sorted(record.spans, key=lambda s: (s[2], s[3], s[0], s[1]))
    path = [
        {
            "kind": kind,
            "name": name,
            "start_ms": _stable(start - record.start),
            "dur_ms": _stable(end - start),
        }
        for kind, name, start, end in ordered[:limit]
    ]
    return {"spans": path, "truncated": len(ordered) > limit}


def explain(
    collector: SpanCollector,
    top: int = 10,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the repro-explain/v1 report from completed query records."""
    records = sorted(collector.completed, key=lambda r: r.name)
    attributions = [(record, attribute_query(record)) for record in records]
    latencies = [record.latency_ms for record, _ in attributions]
    per_bucket: Dict[str, List[float]] = {kind: [] for kind in BUCKETS}
    for _record, buckets in attributions:
        for kind in BUCKETS:
            per_bucket[kind].append(buckets[kind])

    n = len(records)
    bucket_summary: Dict[str, Any] = {}
    total_mean = sum(latencies) / n if n else 0.0
    for kind in BUCKETS:
        values = per_bucket[kind]
        total = sum(values)
        mean = total / n if n else 0.0
        bucket_summary[kind] = {
            "p50_ms": _stable(_percentile(values, 50.0)),
            "p99_ms": _stable(_percentile(values, 99.0)),
            "mean_ms": _stable(mean),
            "total_ms": _stable(total),
            "share": _stable(mean / total_mean) if total_mean > 0 else 0.0,
        }

    # The p99 query (nearest rank on end-to-end latency), decomposed.
    p99_entry: Dict[str, Any] = {}
    if n:
        by_latency = sorted(attributions, key=lambda ra: (ra[0].latency_ms, ra[0].name))
        rank = max(1, math.ceil(0.99 * n)) - 1
        record, buckets = by_latency[rank]
        p99_entry = {
            "query": record.name,
            "latency_ms": _stable(record.latency_ms),
            "buckets": {kind: _stable(buckets[kind]) for kind in BUCKETS},
        }

    slowest = sorted(attributions, key=lambda ra: (-ra[0].latency_ms, ra[0].name))
    top_entries = []
    for record, buckets in slowest[: max(0, top)]:
        entry = {
            "query": record.name,
            "latency_ms": _stable(record.latency_ms),
            "rows": record.rows,
            "buckets": {kind: _stable(buckets[kind]) for kind in BUCKETS},
        }
        entry.update(_span_path(record))
        top_entries.append(entry)

    report: Dict[str, Any] = {
        "schema": EXPLAIN_SCHEMA,
        "queries": n,
        "cancelled": collector.cancelled,
        "end_to_end": {
            "p50_ms": _stable(_percentile(latencies, 50.0)),
            "p99_ms": _stable(_percentile(latencies, 99.0)),
            "mean_ms": _stable(total_mean),
            "max_ms": _stable(max(latencies)) if latencies else 0.0,
        },
        "buckets": bucket_summary,
        "p99_decomposition": p99_entry,
        "slowest": top_entries,
    }
    if extra:
        report.update(extra)
    return report
