"""Write-ahead log records: LSN-stamped, CRC-framed, byte-deterministic.

Every durable state change is described by a :class:`LogRecord` and
serialized with :func:`encode_record` into a self-delimiting frame::

    magic(2) kind(1) pad(1) lsn(8) txn_id(8) prev_lsn(8) payload_len(4)
    payload(payload_len) crc32(4)

All integers are little-endian and unsigned; the CRC covers everything
before it, so a torn or bit-flipped tail is detected by
:func:`decode_stream`, which returns the records of the longest valid
prefix instead of raising — exactly the contract ARIES restart needs
(the tail past the last forced LSN was never acknowledged to anyone).

Updates carry *full* before/after page images.  That costs log volume a
real system would avoid with byte-range diffs, but it buys two things
this reproduction cares about more: redo is idempotent without page-LSN
comparisons, and the committed state is byte-deterministic by
construction (re-applying the log always converges to the same images).
An empty after-image means the page was truncated away; an empty
before-image means it did not previously exist.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import RecoveryError

__all__ = [
    "KIND_ABORT",
    "KIND_BEGIN",
    "KIND_CHECKPOINT",
    "KIND_CLR",
    "KIND_COMMIT",
    "KIND_UPDATE",
    "KIND_NAMES",
    "LogRecord",
    "NO_LSN",
    "decode_stream",
    "encode_record",
]

#: Record kinds, one byte each.
KIND_BEGIN = 1
KIND_UPDATE = 2
KIND_COMMIT = 3
KIND_ABORT = 4
KIND_CLR = 5
KIND_CHECKPOINT = 6

KIND_NAMES: Dict[int, str] = {
    KIND_BEGIN: "BEGIN",
    KIND_UPDATE: "UPDATE",
    KIND_COMMIT: "COMMIT",
    KIND_ABORT: "ABORT",
    KIND_CLR: "CLR",
    KIND_CHECKPOINT: "CHECKPOINT",
}

#: Sentinel for "no previous LSN" / "undo chain exhausted".
NO_LSN = 0

_MAGIC = b"WL"
_HEADER = struct.Struct("<2sBBQQQI")
_CRC = struct.Struct("<I")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


@dataclass(frozen=True)
class LogRecord:
    """One decoded WAL record.

    Field use by kind:

    * BEGIN — ``name`` is the query/transaction name.
    * UPDATE — ``relation``/``page_number`` locate the page,
      ``before``/``after`` are full images (empty = absent).
    * COMMIT / ABORT — chain fields only.
    * CLR — like UPDATE but redo-only; ``undo_next_lsn`` points at the
      next record to undo (skipping already-compensated work).
    * CHECKPOINT — ``att`` maps txn_id -> (last_lsn, name);
      ``dpt`` maps (relation, page_number) -> recLSN.
    """

    lsn: int
    kind: int
    txn_id: int
    prev_lsn: int = NO_LSN
    name: str = ""
    relation: str = ""
    page_number: int = 0
    before: bytes = b""
    after: bytes = b""
    undo_next_lsn: int = NO_LSN
    att: Dict[int, Tuple[int, str]] = field(default_factory=dict)
    dpt: Dict[Tuple[str, int], int] = field(default_factory=dict)

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"?{self.kind}")


def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise RecoveryError(f"string too long for WAL frame: {len(data)} bytes")
    return _U16.pack(len(data)) + data


def _pack_bytes(data: bytes) -> bytes:
    return _U32.pack(len(data)) + data


def _payload(record: LogRecord) -> bytes:
    if record.kind == KIND_BEGIN:
        return _pack_str(record.name)
    if record.kind == KIND_UPDATE:
        return (
            _pack_str(record.relation)
            + _U32.pack(record.page_number)
            + _pack_bytes(record.before)
            + _pack_bytes(record.after)
        )
    if record.kind == KIND_CLR:
        return (
            _pack_str(record.relation)
            + _U32.pack(record.page_number)
            + _pack_bytes(record.after)
            + _U64.pack(record.undo_next_lsn)
        )
    if record.kind in (KIND_COMMIT, KIND_ABORT):
        return b""
    if record.kind == KIND_CHECKPOINT:
        parts = [_U32.pack(len(record.att))]
        for txn_id in sorted(record.att):
            last_lsn, name = record.att[txn_id]
            parts.append(_U64.pack(txn_id) + _U64.pack(last_lsn) + _pack_str(name))
        parts.append(_U32.pack(len(record.dpt)))
        for relation, page_number in sorted(record.dpt):
            rec_lsn = record.dpt[(relation, page_number)]
            parts.append(
                _pack_str(relation) + _U32.pack(page_number) + _U64.pack(rec_lsn)
            )
        return b"".join(parts)
    raise RecoveryError(f"unknown WAL record kind {record.kind}")


def encode_record(record: LogRecord) -> bytes:
    """One CRC-framed byte string; identical input -> identical bytes."""
    payload = _payload(record)
    header = _HEADER.pack(
        _MAGIC,
        record.kind,
        0,
        record.lsn,
        record.txn_id,
        record.prev_lsn,
        len(payload),
    )
    body = header + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


class _Reader:
    """Sequential decoder over one payload."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise RecoveryError("WAL payload underrun")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def string(self) -> str:
        return self.take(self.u16()).decode("utf-8")

    def blob(self) -> bytes:
        return self.take(self.u32())

    def done(self) -> bool:
        return self.pos == len(self.data)


def _decode_payload(
    kind: int, lsn: int, txn_id: int, prev_lsn: int, payload: bytes
) -> LogRecord:
    reader = _Reader(payload)
    if kind == KIND_BEGIN:
        record = LogRecord(lsn=lsn, kind=kind, txn_id=txn_id, prev_lsn=prev_lsn,
                           name=reader.string())
    elif kind == KIND_UPDATE:
        relation = reader.string()
        page_number = reader.u32()
        before = reader.blob()
        after = reader.blob()
        record = LogRecord(
            lsn=lsn, kind=kind, txn_id=txn_id, prev_lsn=prev_lsn,
            relation=relation, page_number=page_number, before=before, after=after,
        )
    elif kind == KIND_CLR:
        relation = reader.string()
        page_number = reader.u32()
        after = reader.blob()
        undo_next = reader.u64()
        record = LogRecord(
            lsn=lsn, kind=kind, txn_id=txn_id, prev_lsn=prev_lsn,
            relation=relation, page_number=page_number, after=after,
            undo_next_lsn=undo_next,
        )
    elif kind in (KIND_COMMIT, KIND_ABORT):
        record = LogRecord(lsn=lsn, kind=kind, txn_id=txn_id, prev_lsn=prev_lsn)
    elif kind == KIND_CHECKPOINT:
        att: Dict[int, Tuple[int, str]] = {}
        for _ in range(reader.u32()):
            tid = reader.u64()
            last_lsn = reader.u64()
            att[tid] = (last_lsn, reader.string())
        dpt: Dict[Tuple[str, int], int] = {}
        for _ in range(reader.u32()):
            relation = reader.string()
            page_number = reader.u32()
            dpt[(relation, page_number)] = reader.u64()
        record = LogRecord(lsn=lsn, kind=kind, txn_id=txn_id, prev_lsn=prev_lsn,
                           att=att, dpt=dpt)
    else:
        raise RecoveryError(f"unknown WAL record kind {kind}")
    if not reader.done():
        raise RecoveryError(
            f"WAL payload for {KIND_NAMES.get(kind, kind)} has "
            f"{len(payload) - reader.pos} trailing bytes"
        )
    return record


def decode_stream(data: bytes) -> Tuple[List[LogRecord], int]:
    """Decode the longest valid prefix of ``data``.

    Returns ``(records, valid_bytes)``.  A truncated frame, a bad magic,
    a CRC mismatch, or a malformed payload ends the scan *cleanly* at the
    last good frame boundary — damage past the forced prefix was never
    acknowledged, so treating it as absent is the correct durability
    semantics, not data loss.  Non-monotone LSNs inside the valid prefix
    raise :class:`~repro.errors.RecoveryError`: that is log corruption a
    crash cannot legally produce.
    """
    records: List[LogRecord] = []
    offset = 0
    previous_lsn = 0
    total = len(data)
    while True:
        if offset + _HEADER.size + _CRC.size > total:
            break
        header = data[offset : offset + _HEADER.size]
        magic, kind, pad, lsn, txn_id, prev_lsn, payload_len = _HEADER.unpack(header)
        if magic != _MAGIC or pad != 0:
            break
        end = offset + _HEADER.size + payload_len + _CRC.size
        if end > total:
            break
        body = data[offset : end - _CRC.size]
        (crc,) = _CRC.unpack(data[end - _CRC.size : end])
        if crc != (zlib.crc32(body) & 0xFFFFFFFF):
            break
        payload = data[offset + _HEADER.size : end - _CRC.size]
        try:
            record = _decode_payload(kind, lsn, txn_id, prev_lsn, payload)
        except RecoveryError:
            break
        if record.lsn <= previous_lsn:
            raise RecoveryError(
                f"WAL LSNs not monotone: {record.lsn} after {previous_lsn} "
                f"inside the CRC-valid prefix"
            )
        previous_lsn = record.lsn
        records.append(record)
        offset = end
    return records, offset
