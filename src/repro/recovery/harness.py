"""Crash-recovery trials: run, crash, recover, compare against the oracle.

One trial is the whole durability story end to end:

1. generate the benchmark database and a mixed read/write workload;
2. run it on a machine with the WAL armed and a fault plan that may
   strike a whole-machine crash (plus torn pages and a corrupt log
   tail at the moment of the crash);
3. if the crash fires, model the power cut
   (:meth:`~repro.recovery.txn.TransactionManager.crash`) and restart
   via :func:`repro.recovery.restart.recover`;
4. replay the *recovered* committed set, in commit order, through the
   reference interpreter on a fresh copy of the database, canonicalize,
   and compare **bytes**.

The oracle is defined post-recovery on purpose: the durable log tail
may contain a coincidentally valid COMMIT whose acknowledgement never
reached the host.  Recovering such a transaction is correct (it is in
the durable log), so the contract is two-sided — recovered committed
state equals the replay of the recovered commit list, *and* every
acknowledged commit appears in that list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import CrashError, ReproError
from repro.faults import FaultPlan, FaultSpec, injecting
from repro.query.interpreter import execute
from repro.query.tree import QueryTree
from repro.recovery.apply import canonical_pages, write_target
from repro.recovery.restart import RecoveryReport, recover
from repro.recovery.store import StableStore
from repro.recovery.txn import TransactionManager
from repro.workload.generator import generate_benchmark_database
from repro.workload.updates import mixed_update_workload

__all__ = ["CrashTrialResult", "run_crash_trial", "oracle_bytes"]

MACHINES = ("ring", "direct", "dataflow")


@dataclass
class CrashTrialResult:
    """Everything one trial produced, byte-comparable."""

    machine: str
    seed: int
    write_fraction: float
    crash_rate: float
    crashed: bool
    committed: List[str]
    acknowledged: List[str]
    byte_identical: bool
    acknowledged_durable: bool
    recovered_bytes: bytes
    oracle: bytes
    elapsed_ms: float
    commits: int
    aborts: int
    events: int = 0
    recovery: Optional[Dict] = None
    damaged_repaired: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """The durability contract held."""
        return self.byte_identical and self.acknowledged_durable

    def to_dict(self) -> Dict:
        """JSON-friendly summary (bytes elided, only their verdicts)."""
        return {
            "machine": self.machine,
            "seed": self.seed,
            "write_fraction": self.write_fraction,
            "crash_rate": self.crash_rate,
            "crashed": self.crashed,
            "committed": self.committed,
            "acknowledged": self.acknowledged,
            "byte_identical": self.byte_identical,
            "acknowledged_durable": self.acknowledged_durable,
            "elapsed_ms": self.elapsed_ms,
            "commits": self.commits,
            "aborts": self.aborts,
            "recovery": self.recovery,
            "damaged_repaired": self.damaged_repaired,
            "ok": self.ok,
        }


def _build_machine(machine: str, catalog, page_bytes: int, processors: int):
    if machine == "ring":
        from repro.ring.machine import RingMachine

        return RingMachine(catalog, processors=processors, page_bytes=page_bytes)
    if machine == "direct":
        from repro.direct.machine import DirectMachine

        return DirectMachine(catalog, processors=processors, page_bytes=page_bytes)
    if machine == "dataflow":
        from repro.dataflow.machine import DataflowMachine

        return DataflowMachine(catalog, processors=processors, page_bytes=page_bytes)
    raise ReproError(f"unknown machine {machine!r}; pick one of {MACHINES}")


def _run_workload(machine_name: str, machine, queries: List[QueryTree]) -> float:
    """Drive ``queries`` to completion; returns elapsed ms.

    The ring machine takes the whole batch up front — its MC lock
    manager serializes conflicting writes.  DIRECT and dataflow have no
    lock manager, so the harness chains submissions: each query is
    submitted when the previous one completes (deferred one event so
    the machines' completion scans never see a mid-iteration mutation).
    """
    if machine_name == "ring":
        for tree in queries:
            machine.submit(tree)
        report = machine.run()
        return report.elapsed_ms

    pending = list(queries)

    def submit_next(*_args) -> None:
        if pending:
            tree = pending.pop(0)
            machine.sim.schedule(0.0, lambda: machine.submit(tree), label="chain.submit")

    machine.on_query_complete = submit_next
    first = pending.pop(0)
    machine.submit(first)
    report = machine.run_service()
    return report.elapsed_ms


def oracle_bytes(
    committed: List[str],
    queries: List[QueryTree],
    scale: float,
    seed: int,
    page_bytes: int,
) -> bytes:
    """Replay ``committed`` (in order) on a fresh database; canonical bytes.

    Relations a committed write touched are installed in canonical form
    (sorted, densely packed — what every machine's commit installs);
    untouched relations keep their generation-time images.
    """
    db = generate_benchmark_database(scale=scale, seed=seed, page_bytes=page_bytes)
    by_name = {tree.name: tree for tree in queries}
    written: Dict[str, None] = {}
    for name in committed:
        tree = by_name[name]
        execute(tree, db.catalog)
        target = write_target(tree.root)
        if target is not None:
            written[target] = None
    store = StableStore()
    for name in sorted(db.catalog.names):
        relation = db.catalog.get(name)
        if name in written:
            images = canonical_pages(
                relation.schema, list(relation.rows()), page_bytes
            )
        else:
            images = [p.to_bytes() for p in relation.packed_pages(page_bytes)]
        store.seed_relation(name, images)
    return store.committed_bytes()


def run_crash_trial(
    machine: str = "ring",
    seed: int = 0,
    scale: float = 0.02,
    write_fraction: float = 0.5,
    crash_rate: float = 1.0,
    torn_page_rate: float = 0.5,
    log_tail_rate: float = 0.5,
    crash_at_ms: float = 10.0,
    crash_window_ms: float = 120.0,
    queries: int = 12,
    page_bytes: int = 2048,
    processors: int = 4,
    checkpoint_every: int = 4,
) -> CrashTrialResult:
    """One full crash-recovery trial; see the module docstring."""
    db = generate_benchmark_database(scale=scale, seed=seed, page_bytes=page_bytes)
    names = db.relation_names
    workload = mixed_update_workload(
        db.catalog, names, seed=seed, count=queries, write_fraction=write_fraction
    )
    # The workload builder is consumed twice (run + oracle); trees carry
    # process-global node ids, so rebuild rather than reuse across the
    # oracle's fresh catalog.
    store = StableStore()
    tm = TransactionManager(store, page_bytes, checkpoint_every=checkpoint_every)
    plan = FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                "machine_crash",
                rate=crash_rate,
                at_ms=crash_at_ms,
                window_ms=crash_window_ms,
            ),
            FaultSpec("torn_page", rate=torn_page_rate),
            FaultSpec("log_tail_corrupt", rate=log_tail_rate),
        ),
    )
    with injecting(plan):
        m = _build_machine(machine, db.catalog, page_bytes, processors)
    m.attach_recovery(tm)

    crashed = False
    recovery_report: Optional[RecoveryReport] = None
    repaired: List[str] = []
    try:
        elapsed = _run_workload(machine, m, workload)
    except CrashError:
        crashed = True
        elapsed = m.sim.now
        tm.crash(m.sim.faults)
        recovery_report = recover(store)
        repaired = list(recovery_report.torn_pages_repaired)
        committed = list(recovery_report.committed)
    if not crashed:
        # Clean run (the crash draw missed): the shutdown checkpoint is
        # the recovery point and every acknowledged commit is in it.
        recovery_report = recover(store)
        committed = list(recovery_report.committed)

    recovered = store.committed_bytes()
    oracle = oracle_bytes(committed, workload, scale, seed, page_bytes)
    acknowledged = list(tm.committed_names)
    return CrashTrialResult(
        machine=machine,
        seed=seed,
        write_fraction=write_fraction,
        crash_rate=crash_rate,
        crashed=crashed,
        committed=committed,
        acknowledged=acknowledged,
        byte_identical=recovered == oracle,
        acknowledged_durable=set(acknowledged) <= set(committed),
        recovered_bytes=recovered,
        oracle=oracle,
        elapsed_ms=elapsed,
        commits=tm.commits,
        aborts=tm.aborts,
        events=m.sim.events_processed,
        recovery=recovery_report.to_dict() if recovery_report else None,
        damaged_repaired=repaired,
    )
