"""The runtime side of recovery: transactions, the buffer pool, crashes.

A :class:`TransactionManager` sits between a machine and its
:class:`~repro.recovery.store.StableStore`.  Machines call
:meth:`begin` / :meth:`stage_rows` / :meth:`commit` / :meth:`abort`;
the manager turns those into LSN-stamped WAL records, keeps the
buffered (volatile) page images and the dirty page table, enforces the
WAL rule (log records reach the durable log before the pages they
describe), takes fuzzy checkpoints, and — when a crash fault strikes —
models exactly what a power cut would leave on disk: the forced log
prefix, every page flushed so far, possibly some *torn* in-flight
flushes, and possibly a corrupt fragment of the unforced log tail.

Design choices worth naming:

* **Steal, no-force for pages; force for the log.**  Commit forces the
  log (durability) but leaves pages dirty (fuzzy); the checkpoint's
  background flusher writes the older half of the dirty page table, so
  a crash exercises both redo (committed but unflushed) and undo
  (flushed but uncommitted) paths.
* **Arrival-order staging, canonical commit.**  Mid-transaction the
  machine stages result rows as they arrive; full pages are logged in
  that order — genuine partial writes for undo to erase.  At commit the
  *canonical* images (sorted rows, densely packed; see
  :mod:`repro.recovery.apply`) are diffed against the buffered state and
  logged, so committed bytes are machine-independent.
* **Checkpoints every few commits** keep the analysis scan short and
  the dirty page table honest without a clock (simulated time is the
  machine's business, not the log's).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import RecoveryError
from repro.recovery.store import StableStore
from repro.recovery.wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_CHECKPOINT,
    KIND_CLR,
    KIND_COMMIT,
    KIND_UPDATE,
    NO_LSN,
    LogRecord,
    encode_record,
)
from repro.relational.page import page_capacity, pack_rows_into_pages
from repro.relational.schema import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.faults.injector import FaultInjector
    from repro.relational.catalog import Catalog
    from repro.sim.engine import Simulator

__all__ = ["Transaction", "TransactionManager"]


class Transaction:
    """One in-flight write transaction (a single write query)."""

    __slots__ = (
        "txn_id",
        "name",
        "relation",
        "schema",
        "base_pages",
        "staged",
        "pages_staged",
        "status",
        "first_lsn",
        "last_lsn",
    )

    def __init__(
        self,
        txn_id: int,
        name: str,
        relation: str,
        schema: Schema,
        base_pages: int,
    ) -> None:
        self.txn_id = txn_id
        self.name = name
        self.relation = relation
        self.schema = schema
        #: First page slot this transaction stages into (0 for
        #: replace-style delete/update; the old page count for append).
        self.base_pages = base_pages
        self.staged: List[Row] = []
        self.pages_staged = 0
        self.status = "active"
        self.first_lsn = NO_LSN
        self.last_lsn = NO_LSN


class TransactionManager:
    """Begin/stage/commit/abort + WAL + buffer pool + crash modeling."""

    def __init__(
        self,
        store: StableStore,
        page_bytes: int,
        checkpoint_every: int = 4,
    ) -> None:
        if checkpoint_every < 1:
            raise RecoveryError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.store = store
        self.page_bytes = page_bytes
        self.checkpoint_every = checkpoint_every
        self._next_lsn = 1
        self._next_txn_id = 1
        self._flushed_lsn = 0
        self._tail = bytearray()
        self._tail_last_lsn = 0
        #: Volatile mirror of every record appended (forced or not), by LSN.
        self._records: Dict[int, LogRecord] = {}
        #: Buffered current page images (the "buffer pool"), lazily seeded
        #: from the store's intended images.
        self._images: Dict[str, Dict[int, bytes]] = {}
        self._page_lsn: Dict[Tuple[str, int], int] = {}
        #: Dirty page table: (relation, page) -> recLSN.
        self.dirty: Dict[Tuple[str, int], int] = {}
        #: Active transaction table by txn_id.
        self.active: Dict[int, Transaction] = {}
        #: Acknowledged commits, in commit order (the durability contract:
        #: every name here must survive any subsequent crash).
        self.committed_names: List[str] = []
        self.aborted_names: List[str] = []
        self.commits = 0
        self.aborts = 0
        self.checkpoints = 0
        self.clr_records = 0
        self.crashed = False
        self._violations: List[str] = []

    # -- seeding ---------------------------------------------------------------

    def seed_from_catalog(self, catalog: "Catalog") -> None:
        """Install every catalog relation's current images as durable state."""
        for name in sorted(catalog.names):
            relation = catalog.get(name)
            self.store.seed_relation(
                name,
                [page.to_bytes() for page in relation.packed_pages(self.page_bytes)],
            )

    def register_sanitizer(self, sim: "Simulator") -> None:
        """Hook the WAL invariants into the simulator's finish checks."""
        if sim.sanitizer is not None:
            sim.sanitizer.register_finish_check(
                "recovery.wal", self.sanitize_violations
            )

    # -- internals -------------------------------------------------------------

    def _guard(self) -> None:
        if self.crashed:
            raise RecoveryError("transaction manager used after crash")

    def _current(self, relation: str) -> Dict[int, bytes]:
        table = self._images.get(relation)
        if table is None:
            # Pre-crash the stored bytes *are* the intended bytes (torn
            # writes only materialize at the crash itself).
            table = dict(self.store.pages.get(relation, {}))
            self._images[relation] = table
        return table

    def page_count(self, relation: str) -> int:
        table = self._current(relation)
        return (max(table) + 1) if table else 0

    def buffered_image(self, relation: str, page_number: int) -> bytes:
        return self._current(relation).get(page_number, b"")

    def _append(self, record: LogRecord) -> LogRecord:
        if record.lsn <= self._tail_last_lsn and self._tail_last_lsn:
            self._violations.append(
                f"WAL LSN not monotone: {record.lsn} appended after "
                f"{self._tail_last_lsn}"
            )
        self._tail.extend(encode_record(record))
        self._tail_last_lsn = record.lsn
        self._records[record.lsn] = record
        return record

    def _take_lsn(self) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        return lsn

    def _install_image(
        self, relation: str, page_number: int, data: bytes, lsn: int
    ) -> None:
        table = self._current(relation)
        if data:
            table[page_number] = data
        else:
            table.pop(page_number, None)
        key = (relation, page_number)
        self.dirty.setdefault(key, lsn)
        self._page_lsn[key] = lsn

    # -- transaction lifecycle -------------------------------------------------

    def begin(
        self, name: str, relation: str, schema: Schema, append: bool = False
    ) -> Transaction:
        """Open a write transaction against one target relation."""
        self._guard()
        txn = Transaction(
            txn_id=self._next_txn_id,
            name=name,
            relation=relation,
            schema=schema,
            base_pages=self.page_count(relation) if append else 0,
        )
        self._next_txn_id += 1
        record = self._append(
            LogRecord(lsn=self._take_lsn(), kind=KIND_BEGIN, txn_id=txn.txn_id,
                      name=name)
        )
        txn.first_lsn = txn.last_lsn = record.lsn
        self.active[txn.txn_id] = txn
        return txn

    def log_page_update(
        self, txn: Transaction, relation: str, page_number: int, after: bytes
    ) -> LogRecord:
        """Log one page write (full before/after images) and buffer it."""
        self._guard()
        before = self.buffered_image(relation, page_number)
        record = self._append(
            LogRecord(
                lsn=self._take_lsn(), kind=KIND_UPDATE, txn_id=txn.txn_id,
                prev_lsn=txn.last_lsn, relation=relation,
                page_number=page_number, before=before, after=after,
            )
        )
        txn.last_lsn = record.lsn
        self._install_image(relation, page_number, after, record.lsn)
        return record

    def stage_rows(self, txn: Transaction, rows: List[Row]) -> None:
        """Stage arriving result rows; log each page as it fills.

        These are the genuine partial writes of an in-flight transaction
        — arrival-ordered, overwriting the target's pages from
        ``txn.base_pages`` up.  A crash or abort before commit must (and
        does) erase them via the undo chain.
        """
        self._guard()
        txn.staged.extend(rows)
        capacity = page_capacity(txn.schema, self.page_bytes)
        while len(txn.staged) >= capacity:
            chunk = txn.staged[:capacity]
            del txn.staged[:capacity]
            page = pack_rows_into_pages(
                txn.schema, chunk, self.page_bytes, validated=True
            )[0]
            self.log_page_update(
                txn, txn.relation, txn.base_pages + txn.pages_staged,
                page.to_bytes(),
            )
            txn.pages_staged += 1

    def commit(self, txn: Transaction, images: List[bytes]) -> None:
        """Log the canonical final images, force, and acknowledge.

        ``images`` is the canonical committed form of the whole target
        relation; only pages that differ from the buffered state produce
        records, and pages past the new length are logged as truncated.
        """
        self._guard()
        old_count = self.page_count(txn.relation)
        for i, image in enumerate(images):
            if self.buffered_image(txn.relation, i) != image:
                self.log_page_update(txn, txn.relation, i, image)
        for i in range(len(images), old_count):
            self.log_page_update(txn, txn.relation, i, b"")
        record = self._append(
            LogRecord(lsn=self._take_lsn(), kind=KIND_COMMIT,
                      txn_id=txn.txn_id, prev_lsn=txn.last_lsn)
        )
        txn.last_lsn = record.lsn
        txn.status = "committed"
        self.force()
        del self.active[txn.txn_id]
        self.committed_names.append(txn.name)
        self.commits += 1
        if self.commits % self.checkpoint_every == 0:
            self.checkpoint()

    def abort(self, txn: Transaction) -> None:
        """Undo every logged page write (CLR chain), then log ABORT.

        Called on lock-upgrade failure and on IC failover: the machine
        discards its in-flight rows, this walks the transaction's chain
        backwards restoring before-images, and the target relation is
        byte-identical to its pre-transaction state afterwards.
        """
        self._guard()
        lsn = txn.last_lsn
        while lsn != NO_LSN:
            record = self._records.get(lsn)
            if record is None:
                raise RecoveryError(
                    f"abort of {txn.name!r}: undo chain LSN {lsn} missing "
                    f"from the volatile log mirror"
                )
            if record.kind == KIND_UPDATE:
                clr = self._append(
                    LogRecord(
                        lsn=self._take_lsn(), kind=KIND_CLR,
                        txn_id=txn.txn_id, prev_lsn=txn.last_lsn,
                        relation=record.relation,
                        page_number=record.page_number,
                        after=record.before, undo_next_lsn=record.prev_lsn,
                    )
                )
                txn.last_lsn = clr.lsn
                self.clr_records += 1
                self._install_image(
                    record.relation, record.page_number, record.before, clr.lsn
                )
                lsn = record.prev_lsn
            elif record.kind == KIND_CLR:
                lsn = record.undo_next_lsn
            else:
                lsn = record.prev_lsn
        self._append(
            LogRecord(lsn=self._take_lsn(), kind=KIND_ABORT,
                      txn_id=txn.txn_id, prev_lsn=txn.last_lsn)
        )
        txn.status = "aborted"
        txn.staged = []
        del self.active[txn.txn_id]
        self.aborted_names.append(txn.name)
        self.aborts += 1

    # -- durability ------------------------------------------------------------

    def force(self) -> None:
        """Push the buffered log tail onto the durable log."""
        if self._tail:
            self.store.append_log(bytes(self._tail))
            self._flushed_lsn = self._tail_last_lsn
            self._tail = bytearray()

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    def flush_page(
        self, relation: str, page_number: int, skip_wal_force: bool = False
    ) -> None:
        """Write one buffered page durably, forcing the log first (WAL rule).

        ``skip_wal_force`` exists only so tests can demonstrate the
        sanitizer catching a write-ahead violation; production paths
        never pass it.
        """
        self._guard()
        key = (relation, page_number)
        lsn = self._page_lsn.get(key, 0)
        if lsn > self._flushed_lsn:
            if skip_wal_force:
                self._violations.append(
                    f"WAL order violated: page {relation}:{page_number} "
                    f"(page LSN {lsn}) flushed ahead of the forced log "
                    f"(flushed LSN {self._flushed_lsn})"
                )
            else:
                self.force()
        self.store.write_page(
            relation, page_number, self.buffered_image(relation, page_number)
        )
        self.dirty.pop(key, None)

    def checkpoint(self) -> LogRecord:
        """Fuzzy checkpoint: flush the older half of the DPT, log ATT+DPT."""
        self._guard()
        by_age = sorted(self.dirty, key=lambda k: (self.dirty[k], k))
        for key in by_age[: len(by_age) // 2]:
            self.flush_page(*key)
        att = {
            txn_id: (txn.last_lsn, txn.name)
            for txn_id, txn in self.active.items()
        }
        record = self._append(
            LogRecord(lsn=self._take_lsn(), kind=KIND_CHECKPOINT, txn_id=0,
                      att=att, dpt=dict(self.dirty))
        )
        self.force()
        self.checkpoints += 1
        return record

    def shutdown(self) -> None:
        """Clean end of run: force, flush every dirty page, checkpoint."""
        self._guard()
        self.force()
        for key in sorted(self.dirty):
            self.flush_page(*key)
        self.checkpoint()

    # -- crash modeling --------------------------------------------------------

    def crash(self, injector: Optional["FaultInjector"] = None) -> None:
        """Drop volatile state, leaving exactly what a power cut would.

        The forced log prefix and every flushed page survive.  With a
        ``torn_page`` spec armed, each dirty (in-flight) page may land
        half-written — bytes that fail their own sector checksum.  Only
        pages whose records sit inside the *forced* log prefix are
        eligible: a flush in flight at power-cut time had already passed
        :meth:`flush_page`'s WAL force, so its redo records are durable
        and the tear is always repairable.  With ``log_tail_corrupt``
        armed, a fragment of the *unforced* tail may reach the disk with
        its last frame garbled; nothing in that tail was ever
        acknowledged, so durability is preserved either way.
        """
        self._guard()
        torn_spec = injector.armed_spec("torn_page") if injector else None
        if torn_spec is not None:
            for key in sorted(self.dirty):
                relation, page_number = key
                data = self.buffered_image(relation, page_number)
                if not data:
                    continue
                if self._page_lsn.get(key, 0) > self._flushed_lsn:
                    # Records still in the unforced tail: the WAL rule
                    # means no flush of this page can be in flight yet.
                    continue
                if injector.decide("torn_page", "flush", torn_spec.rate):
                    half = len(data) // 2
                    torn = (
                        bytes(b ^ 0xA5 for b in data[:half]) + data[half:]
                    )
                    self.store.write_page(relation, page_number, data, torn=torn)
                    injector.count("torn_page", f"{relation}:{page_number}")
        tail_spec = (
            injector.armed_spec("log_tail_corrupt") if injector else None
        )
        if tail_spec is not None and self._tail:
            if injector.decide("log_tail_corrupt", "crash", tail_spec.rate):
                fraction = injector.uniform("log_tail_corrupt", "crash", 0.25, 1.0)
                keep = max(1, int(len(self._tail) * fraction))
                fragment = bytearray(self._tail[:keep])
                # Garble the end so the final (partial) frame never
                # passes its CRC — the scan must stop cleanly there.
                fragment[-1] ^= 0xFF
                self.store.append_log(bytes(fragment))
                injector.count("log_tail_corrupt", f"{keep}b")
        self.crashed = True
        self._images.clear()
        self.dirty.clear()
        self._page_lsn.clear()
        self.active.clear()
        self._records.clear()
        self._tail = bytearray()

    # -- sanitizer -------------------------------------------------------------

    def sanitize_violations(self) -> List[str]:
        """End-of-run WAL invariants (registered as a sanitizer check).

        * recorded WAL-order / LSN-monotonicity violations;
        * dirty-page leaks: a clean end of run must have flushed every
          buffered page (``shutdown`` does);
        * transactions still active after the machine drained;
        * an unforced log tail (acknowledgements would be lies).
        """
        if self.crashed:
            return []
        violations = list(self._violations)
        last = 0
        for lsn in self._records:
            if lsn <= last:
                violations.append(
                    f"WAL LSN not monotone in append order: {lsn} after {last}"
                )
            last = lsn
        for relation, page_number in sorted(self.dirty):
            violations.append(
                f"dirty page leaked at end of run: {relation}:{page_number} "
                f"(recLSN {self.dirty[(relation, page_number)]})"
            )
        for txn_id in sorted(self.active):
            violations.append(
                f"transaction {self.active[txn_id].name!r} still active "
                f"at end of run"
            )
        if self._tail:
            violations.append(
                f"unforced WAL tail of {len(self._tail)} bytes at end of run"
            )
        return violations
