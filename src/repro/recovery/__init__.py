"""Durable update transactions: WAL, checkpoints, and ARIES-lite restart.

The source paper's Section 3 instruction set includes *update* packets
flowing through the same page-granularity dataflow as queries; this
package supplies the durability half of that story.  It is deliberately
machine-agnostic: the ring, DIRECT, and dataflow simulators all talk to
the same :class:`TransactionManager`, which logs page-granularity
before/after images to a :class:`StableStore` and recovers them with a
three-phase analysis/redo/undo restart (:func:`recover`).

Layering:

* :mod:`repro.recovery.wal` — LSN-stamped, CRC-framed, byte-deterministic
  log record encoding; a scan that stops cleanly at a torn tail.
* :mod:`repro.recovery.store` — the "disk": durable page images with
  per-page checksums plus the durable log prefix.
* :mod:`repro.recovery.txn` — the runtime side: begin/stage/commit/abort,
  fuzzy checkpoints, WAL-before-flush enforcement, crash modeling.
* :mod:`repro.recovery.restart` — analysis / redo / undo restart.
* :mod:`repro.recovery.apply` — canonical committed-state page images and
  the write-apply helpers shared by all three machines.
* :mod:`repro.recovery.harness` — crash/recover benchmark used by the
  E17 experiment, ``repro recover``, and the CI smoke job.
"""

from repro.recovery.apply import (
    apply_write,
    canonical_pages,
    canonical_relation,
)
from repro.recovery.restart import RecoveryReport, recover
from repro.recovery.store import StableStore
from repro.recovery.txn import Transaction, TransactionManager
from repro.recovery.wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_CHECKPOINT,
    KIND_CLR,
    KIND_COMMIT,
    KIND_UPDATE,
    LogRecord,
    decode_stream,
    encode_record,
)

__all__ = [
    "KIND_ABORT",
    "KIND_BEGIN",
    "KIND_CHECKPOINT",
    "KIND_CLR",
    "KIND_COMMIT",
    "KIND_UPDATE",
    "LogRecord",
    "RecoveryReport",
    "StableStore",
    "Transaction",
    "TransactionManager",
    "apply_write",
    "canonical_pages",
    "canonical_relation",
    "decode_stream",
    "encode_record",
    "recover",
]
