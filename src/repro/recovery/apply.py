"""Canonical committed-state images and the shared write-apply path.

The three machines deliver result rows in machine-specific arrival
orders (ring IC interleaving, DIRECT task scheduling, dataflow firing
order), while the reference interpreter produces them in scan order.
Committed state must nevertheless be *byte*-comparable against the
oracle, so every commit installs the **canonical form** of the new
relation: rows sorted, then densely packed.  Mid-transaction staged
pages keep their arrival order — those are genuine partial writes the
undo phase must erase — but the images logged at commit, the catalog
relation the next query reads, and the oracle's replayed state all pass
through :func:`canonical_pages` and therefore agree byte-for-byte.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.query.tree import AppendNode, DeleteNode, QueryNode, UpdateNode
from repro.relational.catalog import Catalog
from repro.relational.page import pack_rows_into_pages
from repro.relational.relation import Relation
from repro.relational.schema import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.recovery.txn import Transaction, TransactionManager

__all__ = [
    "apply_write",
    "canonical_pages",
    "canonical_relation",
    "write_target",
]


def canonical_pages(
    schema: Schema, rows: Sequence[Row], page_bytes: int
) -> List[bytes]:
    """Sorted, densely packed page images — the committed on-disk form."""
    pages = pack_rows_into_pages(schema, sorted(rows), page_bytes, validated=True)
    return [page.to_bytes() for page in pages]


def canonical_relation(
    name: str, schema: Schema, rows: Sequence[Row], page_bytes: int
) -> Relation:
    """The canonical :class:`Relation` for the same committed state."""
    return Relation.from_rows(
        name, schema, sorted(rows), page_bytes, validated=True
    )


def write_target(root: QueryNode) -> Optional[str]:
    """The relation a write-root node mutates, or None for read roots."""
    if isinstance(root, (AppendNode, DeleteNode, UpdateNode)):
        return root.target_relation
    return None


def new_relation_rows(
    root: QueryNode, catalog: Catalog, result_rows: Sequence[Row]
) -> List[Row]:
    """The full row content of the target after this write.

    Delete/update kernels emit the *surviving/transformed whole content*
    of the target, so their result already is the new relation; append
    emits only the arriving rows, which extend the old content.
    """
    if isinstance(root, AppendNode):
        old = catalog.get(root.target_relation)
        return list(old.rows()) + list(result_rows)
    return list(result_rows)


def apply_write(
    catalog: Catalog,
    root: QueryNode,
    result_rows: Sequence[Row],
    page_bytes: int,
    tm: Optional["TransactionManager"] = None,
    txn: Optional["Transaction"] = None,
) -> Tuple[Relation, List[Row]]:
    """Install a completed write query's new target relation.

    With a transaction manager armed, the canonical images are logged
    (diff against the buffered state), the commit record is forced, and
    the catalog gets the canonical relation.  Without one, this is a
    plain in-memory replace in arrival order — the pre-WAL behavior.

    Returns ``(new_relation, reported_rows)`` where ``reported_rows``
    is the query's result-row list (the whole updated relation, matching
    the ring machine's established reporting convention for writes).
    """
    target = root.target_relation
    schema = catalog.get(target).schema
    rows = new_relation_rows(root, catalog, result_rows)
    if tm is not None:
        if txn is None:
            raise ValueError("apply_write: tm armed but no transaction handle")
        images = canonical_pages(schema, rows, page_bytes)
        tm.commit(txn, images)
        relation = canonical_relation(target, schema, rows, page_bytes)
    else:
        relation = Relation.from_rows(
            target, schema, rows, page_bytes, validated=True
        )
    catalog.replace(relation)
    return relation, rows
