"""The durable half of the crash model: page images plus the forced log.

A :class:`StableStore` is what survives a ``machine_crash`` fault — the
simulated disk.  It holds per-relation page images keyed by page number,
a per-page checksum written *with* the page (the sector-checksum model:
a torn write leaves bytes that no longer match their own checksum), and
the durable prefix of the write-ahead log.

Everything else — buffer pool, active-transaction table, dirty page
table, the unforced log tail — lives in the
:class:`~repro.recovery.txn.TransactionManager` and is simply discarded
at a crash.

The store serializes to a directory (``save``/``load``) so the
``repro recover`` CLI and the CI smoke job can ``cmp`` recovered bytes
against oracle bytes on real files.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Tuple

from repro.errors import RecoveryError

__all__ = ["StableStore", "page_crc"]

_LOG_FILE = "wal.log"
_MANIFEST = "manifest.json"


def page_crc(data: bytes) -> int:
    """The checksum stored alongside a page image."""
    return zlib.crc32(data) & 0xFFFFFFFF


class StableStore:
    """Durable page images + durable log prefix."""

    def __init__(self) -> None:
        #: relation -> {page_number: image bytes}; absent key = absent page.
        self.pages: Dict[str, Dict[int, bytes]] = {}
        #: relation -> {page_number: checksum the writer intended}.
        self.checksums: Dict[str, Dict[int, int]] = {}
        self.log = bytearray()
        self.page_writes = 0
        self.log_forces = 0

    # -- pages ---------------------------------------------------------------

    def seed_relation(self, relation: str, images: List[bytes]) -> None:
        """Install the initial (pre-history) images of a relation."""
        self.pages[relation] = {i: bytes(img) for i, img in enumerate(images)}
        self.checksums[relation] = {
            i: page_crc(img) for i, img in enumerate(images)
        }

    def write_page(
        self, relation: str, page_number: int, data: bytes, torn: bytes = b""
    ) -> None:
        """One durable page write.

        ``torn`` models a write interrupted mid-sector: the checksum of
        the *intended* image is recorded (as a real sector checksum would
        be staged with the I/O) but the bytes that land are ``torn`` —
        detectable later via :meth:`page_intact`.
        """
        pages = self.pages.setdefault(relation, {})
        sums = self.checksums.setdefault(relation, {})
        if data:
            sums[page_number] = page_crc(data)
            pages[page_number] = bytes(torn) if torn else bytes(data)
        else:
            pages.pop(page_number, None)
            sums.pop(page_number, None)
        self.page_writes += 1

    def read_page(self, relation: str, page_number: int) -> bytes:
        """The raw bytes on disk (possibly torn); empty if absent."""
        return self.pages.get(relation, {}).get(page_number, b"")

    def page_intact(self, relation: str, page_number: int) -> bool:
        """Does the stored image match the checksum written with it?"""
        data = self.pages.get(relation, {}).get(page_number)
        if data is None:
            return True
        return page_crc(data) == self.checksums[relation][page_number]

    def damaged_pages(self) -> List[Tuple[str, int]]:
        """Every (relation, page_number) whose bytes fail their checksum."""
        damaged = []
        for relation in sorted(self.pages):
            for page_number in sorted(self.pages[relation]):
                if not self.page_intact(relation, page_number):
                    damaged.append((relation, page_number))
        return damaged

    def relation_images(self, relation: str) -> List[bytes]:
        """The dense page list of a relation; raises on holes.

        Committed state is always densely packed (canonical install), so
        a hole here means a recovery bug, not a crash artifact.
        """
        table = self.pages.get(relation, {})
        images: List[bytes] = []
        for i, page_number in enumerate(sorted(table)):
            if page_number != i:
                raise RecoveryError(
                    f"relation {relation!r} has a page hole at {i} "
                    f"(next stored page is {page_number})"
                )
            images.append(table[page_number])
        return images

    def committed_bytes(self) -> bytes:
        """One deterministic byte string for the whole durable database.

        The framing (name + page count + per-page length prefix) makes
        the serialization injective, so byte equality here is state
        equality.  This is what ``repro recover`` writes to disk for the
        CI ``cmp`` and what the E17 oracle comparison uses.
        """
        parts: List[bytes] = []
        for relation in sorted(self.pages):
            images = self.relation_images(relation)
            header = f"{relation}:{len(images)}\n".encode("utf-8")
            parts.append(header)
            for image in images:
                parts.append(len(image).to_bytes(4, "little"))
                parts.append(image)
        return b"".join(parts)

    # -- log -----------------------------------------------------------------

    def append_log(self, data: bytes) -> None:
        """Force ``data`` onto the durable log."""
        self.log.extend(data)
        self.log_forces += 1

    # -- persistence ---------------------------------------------------------

    def save(self, directory: str) -> None:
        """Serialize the store into ``directory`` (created if missing)."""
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, _LOG_FILE), "wb") as fh:
            fh.write(bytes(self.log))
        manifest: Dict[str, List[List[object]]] = {}
        for relation in sorted(self.pages):
            entries = []
            for page_number in sorted(self.pages[relation]):
                data = self.pages[relation][page_number]
                entries.append(
                    [page_number, self.checksums[relation][page_number],
                     data.hex()]
                )
            manifest[relation] = entries
        with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, sort_keys=True)

    @classmethod
    def load(cls, directory: str) -> "StableStore":
        store = cls()
        with open(os.path.join(directory, _LOG_FILE), "rb") as fh:
            store.log = bytearray(fh.read())
        with open(os.path.join(directory, _MANIFEST), "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        for relation, entries in manifest.items():
            pages: Dict[int, bytes] = {}
            sums: Dict[int, int] = {}
            for page_number, crc, hex_data in entries:
                pages[int(page_number)] = bytes.fromhex(hex_data)
                sums[int(page_number)] = int(crc)
            store.pages[relation] = pages
            store.checksums[relation] = sums
        return store
