"""ARIES-lite restart: analysis, redo, undo over full-page images.

:func:`recover` takes a :class:`~repro.recovery.store.StableStore` as a
crash left it and returns it to a clean, fully-committed state:

1. **Analysis** scans the CRC-valid log prefix from the last complete
   checkpoint, rebuilding the active-transaction table (winners have a
   COMMIT, finished losers an ABORT, crash losers neither).
2. **Redo** repeats history: every UPDATE/CLR image is re-applied in
   LSN order.  Full images make redo idempotent without page-LSN
   comparisons, and because a page is only ever flushed after its log
   records were forced (the WAL rule), replaying the whole valid log
   always converges to a state at least as new as any flushed page —
   including *torn* pages, which are simply overwritten by their last
   logged image.
3. **Undo** rolls back crash losers in descending-LSN order across all
   of them (one merged pass, as ARIES does), writing CLRs and closing
   each with an ABORT record, so a crash *during* recovery would not
   re-undo compensated work.

Afterwards every buffered image is flushed and a final empty checkpoint
is forced, leaving the store byte-deterministic: equal histories yield
equal ``committed_bytes()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RecoveryError
from repro.recovery.store import StableStore
from repro.recovery.wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_CHECKPOINT,
    KIND_CLR,
    KIND_COMMIT,
    KIND_UPDATE,
    NO_LSN,
    LogRecord,
    decode_stream,
    encode_record,
)

__all__ = ["RecoveryReport", "recover"]


@dataclass
class RecoveryReport:
    """What one restart pass saw and did."""

    committed: List[str] = field(default_factory=list)
    losers: List[str] = field(default_factory=list)
    aborted: List[str] = field(default_factory=list)
    records_scanned: int = 0
    valid_log_bytes: int = 0
    torn_tail_bytes: int = 0
    redo_applied: int = 0
    undo_applied: int = 0
    clr_written: int = 0
    torn_pages_repaired: List[str] = field(default_factory=list)
    checkpoint_lsn: int = NO_LSN

    def to_dict(self) -> Dict[str, object]:
        return {
            "committed": list(self.committed),
            "losers": list(self.losers),
            "aborted": list(self.aborted),
            "records_scanned": self.records_scanned,
            "valid_log_bytes": self.valid_log_bytes,
            "torn_tail_bytes": self.torn_tail_bytes,
            "redo_applied": self.redo_applied,
            "undo_applied": self.undo_applied,
            "clr_written": self.clr_written,
            "torn_pages_repaired": list(self.torn_pages_repaired),
            "checkpoint_lsn": self.checkpoint_lsn,
        }


class _Loser:
    __slots__ = ("txn_id", "name", "last_lsn")

    def __init__(self, txn_id: int, name: str, last_lsn: int) -> None:
        self.txn_id = txn_id
        self.name = name
        self.last_lsn = last_lsn


def recover(store: StableStore) -> RecoveryReport:
    """Run analysis / redo / undo over ``store`` in place."""
    records, valid_bytes = decode_stream(bytes(store.log))
    report = RecoveryReport(
        records_scanned=len(records),
        valid_log_bytes=valid_bytes,
        torn_tail_bytes=len(store.log) - valid_bytes,
    )
    # A corrupt tail is detected damage, not data: truncate the durable
    # log to the valid prefix so post-recovery appends form a clean log.
    if report.torn_tail_bytes:
        del store.log[valid_bytes:]

    damaged = set(store.damaged_pages())
    by_lsn: Dict[int, LogRecord] = {r.lsn: r for r in records}

    # ---- analysis ----------------------------------------------------------
    checkpoint: Optional[LogRecord] = None
    for record in records:
        if record.kind == KIND_CHECKPOINT:
            checkpoint = record
    report.checkpoint_lsn = checkpoint.lsn if checkpoint else NO_LSN

    att: Dict[int, _Loser] = {}
    if checkpoint is not None:
        for txn_id, (last_lsn, name) in checkpoint.att.items():
            att[txn_id] = _Loser(txn_id, name, last_lsn)
    start_lsn = checkpoint.lsn if checkpoint is not None else 0
    names: Dict[int, str] = {t.txn_id: t.name for t in att.values()}
    for record in records:
        if record.lsn <= start_lsn:
            if record.kind == KIND_BEGIN:
                names.setdefault(record.txn_id, record.name)
            continue
        if record.kind == KIND_BEGIN:
            names[record.txn_id] = record.name
            att[record.txn_id] = _Loser(record.txn_id, record.name, record.lsn)
        elif record.kind in (KIND_UPDATE, KIND_CLR):
            loser = att.get(record.txn_id)
            if loser is None:
                # Active before the checkpoint's ATT snapshot was cut —
                # can only happen for records between checkpoint-taking
                # and checkpoint-logging; register conservatively.
                att[record.txn_id] = _Loser(
                    record.txn_id,
                    names.get(record.txn_id, f"txn{record.txn_id}"),
                    record.lsn,
                )
            else:
                loser.last_lsn = record.lsn
        elif record.kind == KIND_COMMIT:
            entry = att.pop(record.txn_id, None)
            name = entry.name if entry else names.get(record.txn_id)
            report.committed.append(name or f"txn{record.txn_id}")
        elif record.kind == KIND_ABORT:
            entry = att.pop(record.txn_id, None)
            name = entry.name if entry else names.get(record.txn_id)
            report.aborted.append(name or f"txn{record.txn_id}")
    # Commits that predate the analysis window (before the checkpoint)
    # are already durable in full; report them too, in log order.
    pre_committed = [
        names.get(r.txn_id, f"txn{r.txn_id}")
        for r in records
        if r.kind == KIND_COMMIT and r.lsn <= start_lsn
    ]
    report.committed = pre_committed + report.committed
    report.losers = sorted(loser.name for loser in att.values())

    # ---- redo --------------------------------------------------------------
    images: Dict[Tuple[str, int], bytes] = {}
    for record in records:
        if record.kind in (KIND_UPDATE, KIND_CLR):
            key = (record.relation, record.page_number)
            images[key] = record.after
            report.redo_applied += 1
            if key in damaged:
                damaged.discard(key)
                report.torn_pages_repaired.append(
                    f"{record.relation}:{record.page_number}"
                )
    if damaged:
        # A torn page the log never mentions cannot be repaired — but it
        # also cannot exist: torn writes only strike dirty pages, and
        # dirty pages are dirty *because* an update was logged (and the
        # WAL rule forced that record before any flush began).
        broken = ", ".join(f"{r}:{p}" for r, p in sorted(damaged))
        raise RecoveryError(
            f"damaged page(s) with no redo image in the valid log: {broken}"
        )

    # ---- undo --------------------------------------------------------------
    next_lsn = (max(by_lsn) + 1) if by_lsn else 1
    new_records: List[LogRecord] = []

    def append(record: LogRecord) -> LogRecord:
        nonlocal next_lsn
        next_lsn += 1
        new_records.append(record)
        by_lsn[record.lsn] = record
        return record

    undo_cursor: Dict[int, int] = {}
    undo_last: Dict[int, int] = {}
    for loser in att.values():
        undo_cursor[loser.txn_id] = loser.last_lsn
        undo_last[loser.txn_id] = loser.last_lsn
    while True:
        live = {tid: lsn for tid, lsn in undo_cursor.items() if lsn != NO_LSN}
        if not live:
            break
        txn_id = max(live, key=lambda tid: live[tid])
        record = by_lsn.get(live[txn_id])
        if record is None:
            raise RecoveryError(
                f"undo chain of txn {txn_id} references LSN "
                f"{live[txn_id]} outside the valid log"
            )
        if record.kind == KIND_UPDATE:
            clr = append(
                LogRecord(
                    lsn=next_lsn, kind=KIND_CLR, txn_id=txn_id,
                    prev_lsn=undo_last[txn_id], relation=record.relation,
                    page_number=record.page_number, after=record.before,
                    undo_next_lsn=record.prev_lsn,
                )
            )
            undo_last[txn_id] = clr.lsn
            images[(record.relation, record.page_number)] = record.before
            report.undo_applied += 1
            report.clr_written += 1
            undo_cursor[txn_id] = record.prev_lsn
        elif record.kind == KIND_CLR:
            undo_cursor[txn_id] = record.undo_next_lsn
        else:
            undo_cursor[txn_id] = record.prev_lsn
    for txn_id in sorted(undo_cursor):
        append(
            LogRecord(lsn=next_lsn, kind=KIND_ABORT, txn_id=txn_id,
                      prev_lsn=undo_last[txn_id])
        )

    # ---- install -----------------------------------------------------------
    for record in new_records:
        store.append_log(encode_record(record))
    for (relation, page_number) in sorted(images):
        store.write_page(relation, page_number, images[(relation, page_number)])
    final_checkpoint = LogRecord(
        lsn=next_lsn, kind=KIND_CHECKPOINT, txn_id=0
    )
    store.append_log(encode_record(final_checkpoint))
    return report
