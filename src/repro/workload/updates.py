"""Write-transaction workload templates (UPDATE / DELETE / INSERT).

The paper's benchmark (Section 3.2) is read-only; the durability work
needs *update packets* too.  This module builds a deterministic mixed
stream of read and write queries over the benchmark database:

* **UPDATE** — ``v += delta`` (or ``a += delta``) on a ``key``-range,
  the single-node :class:`~repro.query.tree.UpdateNode` template;
* **DELETE** — a thin ``key``-range delete (small enough that a long
  run never drains a relation);
* **INSERT** — the INSERT ... SELECT template
  (:func:`repro.query.builder.insert_from`): a restricted scan of a
  sibling relation appended into the target, exactly like Section
  2.1's append example (the paper has no row-literal packet);
* **READ** — a one-restrict scan, the benchmark's smallest shape.

Target relations are Zipf-skewed (hot relations absorb most writes,
the usual OLTP shape) and every draw comes off one seeded
:class:`random.Random`, so the stream is byte-deterministic in
``(seed, count, write_fraction)``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import WorkloadError
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.query.builder import delete_from, insert_from, scan, update_set
from repro.query.tree import QueryTree
from repro.sim.random import RandomStreams
from repro.workload.zipf import ZipfGenerator

__all__ = ["mixed_update_workload", "write_query"]

#: Relative frequency of the three write templates (update-heavy, like
#: any OLTP trace: most writes touch values, few add or remove rows).
_WRITE_TEMPLATE_WEIGHTS = (("update", 6), ("delete", 2), ("insert", 2))


def _pick_template(rng: random.Random) -> str:
    total = sum(w for _, w in _WRITE_TEMPLATE_WEIGHTS)
    roll = rng.randrange(total)
    for name, weight in _WRITE_TEMPLATE_WEIGHTS:
        roll -= weight
        if roll < 0:
            return name
    raise AssertionError("unreachable")


def write_query(
    catalog: Catalog,
    relation_names: Sequence[str],
    rng: random.Random,
    zipf: ZipfGenerator,
    name: str,
) -> QueryTree:
    """One write query: template and operands drawn from ``rng``."""
    target = relation_names[(zipf.draw(rng) - 1) % len(relation_names)]
    rows = catalog.get(target).cardinality
    template = _pick_template(rng)
    if template == "update":
        span = max(1, rows // 8)
        lo = rng.randrange(max(1, rows - span + 1))
        if rng.random() < 0.5:
            return update_set(
                target, attr("key") >= lo, "v", rng.uniform(-5.0, 5.0), name=name
            )
        return update_set(
            target,
            (attr("key") >= lo) & (attr("key") < lo + span),
            "a",
            rng.randrange(1, 4),
            name=name,
        )
    if template == "delete":
        # Thin slice: at most ~2% of the relation goes per delete, so a
        # long stream never drains its target.
        span = max(1, rows // 50)
        lo = rng.randrange(max(1, rows))
        return delete_from(
            target, (attr("key") >= lo) & (attr("key") < lo + span), name=name
        )
    # insert: a thin restricted scan of a sibling appended into target
    # (all benchmark relations share one schema, so arity always checks).
    source = relation_names[rng.randrange(len(relation_names))]
    src_rows = catalog.get(source).cardinality
    span = max(1, src_rows // 50)
    lo = rng.randrange(max(1, src_rows))
    return insert_from(
        source, (attr("key") >= lo) & (attr("key") < lo + span), target, name=name
    )


def mixed_update_workload(
    catalog: Catalog,
    relation_names: Sequence[str],
    seed: int = 0,
    count: int = 12,
    write_fraction: float = 0.5,
    zipf_skew: float = 1.0,
) -> List[QueryTree]:
    """A deterministic stream of ``count`` read and write queries.

    ``write_fraction`` of the stream (rounded per-draw, not per-batch)
    are write transactions; the rest are one-restrict reads.  Trees are
    validated against ``catalog`` before returning.
    """
    if not relation_names:
        raise WorkloadError("mixed_update_workload needs at least one relation")
    if not 0.0 <= write_fraction <= 1.0:
        raise WorkloadError(
            f"write_fraction must be in [0, 1], got {write_fraction}"
        )
    rng = RandomStreams(seed).stream("workload.updates")
    zipf = ZipfGenerator(len(relation_names), s=zipf_skew)
    out: List[QueryTree] = []
    for i in range(count):
        name = f"mix-{i:03d}"
        if rng.random() < write_fraction:
            tree = write_query(catalog, relation_names, rng, zipf, name)
        else:
            rel = relation_names[(zipf.draw(rng) - 1) % len(relation_names)]
            rows = catalog.get(rel).cardinality
            cutoff = max(1, rng.randrange(max(1, rows // 4)))
            tree = scan(rel).restrict(attr("key") < cutoff).tree(name)
        tree.validate(catalog)
        out.append(tree)
    return out
