"""The paper's benchmark workload (Section 3.2).

"Using a benchmark containing ten queries (2 queries with 1 restrict
operator only, 3 queries with 1 join and 2 restricts each, 2 queries with
2 joins and 3 restricts each, 1 query with 3 joins and 4 restricts, 1 query
with 4 joins and 4 restricts, and 1 query with 5 joins and 6 restricts),
a relational database containing 15 relations with a combined size of 5.5
megabytes ..."

This package generates that database deterministically and builds exactly
that query mix.  Selectivities and join attributes are not given in the
paper (they live in the companion TR #368); ours are documented defaults,
exposed as parameters.
"""

from repro.workload.generator import (
    BenchmarkDatabase,
    RelationSpec,
    benchmark_relation_specs,
    generate_benchmark_database,
)
from repro.workload.queries import (
    BENCHMARK_MIX,
    benchmark_queries,
    verify_benchmark_mix,
)

__all__ = [
    "BenchmarkDatabase",
    "RelationSpec",
    "benchmark_relation_specs",
    "generate_benchmark_database",
    "BENCHMARK_MIX",
    "benchmark_queries",
    "verify_benchmark_mix",
]
