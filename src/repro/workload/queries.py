"""The ten-query benchmark of Section 3.2, shape-exact.

The paper specifies the mix precisely:

* 2 queries with 1 restrict operator only
* 3 queries with 1 join and 2 restricts each
* 2 queries with 2 joins and 3 restricts each
* 1 query with 3 joins and 4 restricts
* 1 query with 4 joins and 4 restricts
* 1 query with 5 joins and 6 restricts

Mix totals: 10 queries, 19 joins (3*1 + 2*2 + 3 + 4 + 5), 28 restricts
(2*1 + 3*2 + 2*3 + 4 + 4 + 6).

Shapes we use (the paper gives counts, not shapes):

* ``1J+2R``: restrict(A) JOIN restrict(B) — both operands filtered.
* ``2J+3R``: (restrict(A) JOIN restrict(B)) JOIN restrict(C) — a left-deep
  chain, the natural pipeline case the paper's Figure 2.1 depicts.
* ``kJ+(k+1)R``: left-deep chain over k+1 restricted relations.
* ``4J+4R``: left-deep chain over 5 relations where the last operand is an
  unrestricted scan (4 restricts only, per the paper's count).

Restricts are ``key < ceil(selectivity * rows)`` so selectivity is exact;
joins are equijoins on the shared ``b`` attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import WorkloadError
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.query.builder import NodeBuilder, scan
from repro.query.tree import QueryTree

#: The paper's mix as (join_count, restrict_count, how_many_queries).
BENCHMARK_MIX: List[tuple] = [
    (0, 1, 2),
    (1, 2, 3),
    (2, 3, 2),
    (3, 4, 1),
    (4, 4, 1),
    (5, 6, 1),
]


@dataclass(frozen=True)
class QuerySpec:
    """Planned shape of one benchmark query."""

    name: str
    joins: int
    restricts: int
    relations: tuple


def _mix_specs(relation_names: Sequence[str]) -> List[QuerySpec]:
    """Assign relations round-robin to the ten query shapes.

    Relation assignment is deterministic: queries walk the relation list in
    order, wrapping around, so every relation participates in the workload
    (the paper's database has every relation "live").
    """
    if len(relation_names) < 6:
        raise WorkloadError(
            f"benchmark needs at least 6 relations, got {len(relation_names)}"
        )
    specs: List[QuerySpec] = []
    cursor = 0

    def take(count: int) -> tuple:
        nonlocal cursor
        chosen = tuple(
            relation_names[(cursor + i) % len(relation_names)] for i in range(count)
        )
        cursor += count
        return chosen

    qnum = 0
    for joins, restricts, how_many in BENCHMARK_MIX:
        for _ in range(how_many):
            qnum += 1
            needed = 1 if joins == 0 else joins + 1
            specs.append(
                QuerySpec(
                    name=f"bench-q{qnum:02d}",
                    joins=joins,
                    restricts=restricts,
                    relations=take(needed),
                )
            )
    return specs


def _restricted(relation: str, catalog: Catalog, selectivity: float) -> NodeBuilder:
    rows = catalog.get(relation).cardinality
    cutoff = max(1, int(round(selectivity * rows)))
    return scan(relation).restrict(attr("key") < cutoff)


def _build_query(spec: QuerySpec, catalog: Catalog, selectivity: float) -> QueryTree:
    if spec.joins == 0:
        return _restricted(spec.relations[0], catalog, selectivity).tree(spec.name)

    # Left-deep equijoin chain on the shared b attribute.  With j joins and
    # j+1 relations, spec.restricts of the operands are restricted (the
    # 4J+4R query leaves its last operand unrestricted).
    restricted_count = min(spec.restricts, len(spec.relations))
    operands: List[NodeBuilder] = []
    for i, rel in enumerate(spec.relations):
        if i < restricted_count:
            operands.append(_restricted(rel, catalog, selectivity))
        else:
            operands.append(scan(rel))

    current = operands[0]
    for nxt in operands[1:]:
        current = current.equijoin(nxt, "b", "b")
    tree = current.tree(spec.name)

    leftover = spec.restricts - restricted_count
    if leftover:
        raise WorkloadError(
            f"query {spec.name} wants {spec.restricts} restricts over "
            f"{len(spec.relations)} relations; shape cannot place {leftover}"
        )
    return tree


def benchmark_queries(
    catalog: Catalog,
    relation_names: Sequence[str],
    selectivity: float = 0.08,
) -> List[QueryTree]:
    """Build the ten-query benchmark against ``catalog``.

    ``selectivity`` is the exact fraction of rows each restrict keeps
    (default 0.08 — TR #368's values are unavailable; this default keeps
    join inputs in the hundreds of pages at full scale).  Every returned
    tree is validated and the overall mix is asserted against the paper.
    """
    if not 0.0 < selectivity <= 1.0:
        raise WorkloadError(f"selectivity must be in (0, 1], got {selectivity}")
    trees = [
        _build_query(spec, catalog, selectivity)
        for spec in _mix_specs(list(relation_names))
    ]
    for tree in trees:
        tree.validate(catalog)
    verify_benchmark_mix(trees)
    return trees


def verify_benchmark_mix(trees: Sequence[QueryTree]) -> None:
    """Assert ``trees`` matches the paper's ten-query mix exactly."""
    expected: Dict[tuple, int] = {}
    for joins, restricts, how_many in BENCHMARK_MIX:
        expected[(joins, restricts)] = how_many
    actual: Dict[tuple, int] = {}
    for tree in trees:
        shape = (tree.join_count, tree.restrict_count)
        actual[shape] = actual.get(shape, 0) + 1
    if actual != expected:
        raise WorkloadError(
            f"benchmark mix mismatch: expected {expected}, got {actual}"
        )
