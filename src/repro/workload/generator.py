"""Deterministic synthetic database: 15 relations, ~5.5 megabytes.

Section 3.2's experiment uses "a relational database containing 15
relations with a combined size of 5.5 megabytes".  Section 3.3's analysis
assumes 100-byte tuples.  We honor both: every relation shares a 96-byte
record format (the closest multiple the fixed-width schema yields to the
paper's "100 bytes") and the 15 relation sizes are weighted so page bytes
total ~5.5 MB at ``scale=1.0``.

Schema of every benchmark relation::

    key  INT     -- unique within the relation (0..rows-1, shuffled)
    a    INT     -- Zipf-skewed foreign-key-like attribute
    b    INT     -- uniform join attribute over a shared domain
    v    FLOAT   -- uniform measure in [0, 1000)
    pad  CHAR(64)-- filler so the record is ~100 bytes, per Section 3.3

Joins in the benchmark queries run on ``b`` (shared domain across all
relations) so every pair of relations joins meaningfully; restricts run on
``key`` ranges so selectivity is exact and controllable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro import hw
from repro.errors import WorkloadError
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.sim.random import RandomStreams
from repro.workload.zipf import ZipfGenerator, shuffled_range, weighted_partition

#: The shared record layout of every benchmark relation (96 bytes).
BENCHMARK_SCHEMA = Schema.build(
    ("key", DataType.INT),
    ("a", DataType.INT),
    ("b", DataType.INT),
    ("v", DataType.FLOAT),
    ("pad", DataType.CHAR, 64),
)

#: Domain of the shared join attribute ``b``.  An equijoin of relations with
#: n and m rows then yields ~ n*m / B_DOMAIN result rows.
B_DOMAIN = 1000

#: Relative sizes of the 15 relations.  The paper gives only the total; we
#: use a mild spread (factor ~6 between smallest and largest) so queries mix
#: small and large operands.
_RELATION_WEIGHTS = [6, 5, 5, 4, 4, 4, 3, 3, 3, 2, 2, 2, 1, 1, 1]


@dataclass(frozen=True)
class RelationSpec:
    """Planned shape of one benchmark relation."""

    name: str
    rows: int

    @property
    def data_bytes(self) -> int:
        """Bytes of packed records (excluding page headers/padding)."""
        return self.rows * BENCHMARK_SCHEMA.record_width


@dataclass
class BenchmarkDatabase:
    """The generated database: a catalog plus its generation parameters."""

    catalog: Catalog
    specs: List[RelationSpec]
    scale: float
    seed: int
    page_bytes: int

    @property
    def relation_names(self) -> List[str]:
        """Names of the 15 benchmark relations in size order."""
        return [s.name for s in self.specs]

    @property
    def total_bytes(self) -> int:
        """Combined stored size (page-granular) of the database."""
        return self.catalog.total_bytes


def benchmark_relation_specs(scale: float = 1.0) -> List[RelationSpec]:
    """Row counts for the 15 relations at ``scale`` (1.0 = paper's 5.5 MB).

    The target is 5.5 MB of *useful record bytes*; stored page bytes land
    slightly above that depending on the page size chosen at generation.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    total_rows = int(scale * hw.BENCHMARK_DB_BYTES / BENCHMARK_SCHEMA.record_width)
    if total_rows < hw.BENCHMARK_NUM_RELATIONS:
        raise WorkloadError(
            f"scale {scale} yields {total_rows} rows, fewer than "
            f"{hw.BENCHMARK_NUM_RELATIONS} relations"
        )
    rows = weighted_partition(total_rows, _RELATION_WEIGHTS)
    return [
        RelationSpec(name=f"rel{i + 1:02d}", rows=r)
        for i, r in enumerate(rows)
    ]


def _generate_relation(
    spec: RelationSpec, rng: random.Random, page_bytes: int, b_domain: int
) -> Relation:
    zipf = ZipfGenerator(max(1, spec.rows // 10), s=1.0)
    keys = shuffled_range(rng, spec.rows)
    draw = zipf.draw
    randrange = rng.randrange
    uniform = rng.uniform
    rows = [
        (
            key,
            draw(rng),
            randrange(b_domain),
            uniform(0.0, 1000.0),
            "",  # pad column stays empty; its 64 bytes are layout, not data
        )
        for key in keys
    ]
    # The rows are valid by construction (ints, a float, an empty pad), so
    # packing skips the per-row type checks — generation runs once per
    # sweep point and used to dominate quick-bench profiles.
    return Relation.from_rows(
        spec.name, BENCHMARK_SCHEMA, rows, page_bytes=page_bytes, validated=True
    )


def generate_benchmark_database(
    scale: float = 1.0,
    seed: int = 1979,
    page_bytes: int = 4096,
    b_domain: int = B_DOMAIN,
) -> BenchmarkDatabase:
    """Generate the 15-relation benchmark database.

    ``scale`` shrinks or grows the database proportionally (tests use small
    scales; the headline experiments use the documented defaults), and
    ``b_domain`` shrinks the join-attribute domain so joins stay non-empty
    at tiny scales.  The result is bit-for-bit deterministic in
    ``(scale, seed, page_bytes, b_domain)``.
    """
    if b_domain < 1:
        raise WorkloadError(f"b_domain must be >= 1, got {b_domain}")
    specs = benchmark_relation_specs(scale)
    catalog = Catalog()
    # One independent RNG stream per relation so adding a relation never
    # perturbs the others; RandomStreams' crc32 mixing keeps the stream
    # seed stable across processes (str.__hash__ is randomized per run).
    streams = RandomStreams(seed)
    for spec in specs:
        rng = streams.stream(spec.name)
        catalog.register(_generate_relation(spec, rng, page_bytes, b_domain))
    return BenchmarkDatabase(
        catalog=catalog, specs=specs, scale=scale, seed=seed, page_bytes=page_bytes
    )


def database_profile(db: BenchmarkDatabase) -> Dict[str, int]:
    """Summary numbers the experiments print alongside figures."""
    return {
        "relations": len(db.specs),
        "total_rows": db.catalog.total_rows,
        "total_bytes": db.catalog.total_bytes,
        "record_width": BENCHMARK_SCHEMA.record_width,
        "page_bytes": db.page_bytes,
    }
