"""Skewed and uniform value generators for the synthetic database.

All generators are driven by a caller-supplied :class:`random.Random`, so
database generation is deterministic under a seed (a requirement for
reproducible figures).
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence


class ZipfGenerator:
    """Draws integers in ``[1, n]`` with Zipfian skew parameter ``s``.

    Uses an exact inverse-CDF table (fine for the n <= ~100k this library
    needs).  ``s = 0`` degenerates to uniform.
    """

    def __init__(self, n: int, s: float = 1.0):
        if n < 1:
            raise ValueError(f"Zipf needs n >= 1, got {n}")
        if s < 0:
            raise ValueError(f"Zipf skew must be >= 0, got {s}")
        self.n = n
        self.s = s
        weights = [1.0 / math.pow(k, s) for k in range(1, n + 1)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cdf = cumulative

    def draw(self, rng: random.Random) -> int:
        """One Zipf-distributed integer in ``[1, n]``."""
        u = rng.random()
        return bisect.bisect_left(self._cdf, u) + 1


def uniform_int(rng: random.Random, low: int, high: int) -> int:
    """Uniform integer in ``[low, high]`` inclusive."""
    return rng.randint(low, high)


def shuffled_range(rng: random.Random, n: int) -> List[int]:
    """The integers ``0..n-1`` in a seeded random order (unique keys)."""
    values = list(range(n))
    rng.shuffle(values)
    return values


def random_string(rng: random.Random, length: int, alphabet: str = "abcdefghijklmnopqrstuvwxyz") -> str:
    """A random fixed-length string over ``alphabet``."""
    return "".join(rng.choice(alphabet) for _ in range(length))


def weighted_partition(total: int, weights: Sequence[float]) -> List[int]:
    """Split ``total`` into integer parts proportional to ``weights``.

    Parts always sum exactly to ``total`` (largest-remainder rounding)
    and every part is at least 1 when ``total >= len(weights)``.
    """
    if total < 0:
        raise ValueError("total must be nonnegative")
    wsum = float(sum(weights))
    if wsum <= 0:
        raise ValueError("weights must sum to a positive value")
    raw = [total * w / wsum for w in weights]
    parts = [int(x) for x in raw]
    remainders = sorted(
        range(len(weights)), key=lambda i: raw[i] - parts[i], reverse=True
    )
    shortfall = total - sum(parts)
    for i in range(shortfall):
        parts[remainders[i % len(weights)]] += 1
    if total >= len(weights):
        # Promote zero parts to 1, stealing from the largest parts.
        for i, p in enumerate(parts):
            if p == 0:
                donor = max(range(len(parts)), key=lambda j: parts[j])
                parts[donor] -= 1
                parts[i] = 1
    return parts
